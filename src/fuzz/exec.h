//===- fuzz/exec.h - The differential executor matrix ----------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzz case through every semantics the repo implements and
/// reports divergences against the denotational oracle (`evalT`):
///
///   - oracle: `evalT` over KRelations, dense attributes materialized over
///     their full extent (the reference for both the relation-valued and
///     the fully contracted scalar result);
///   - runtime streams, per SearchPolicy (Linear/Binary/Gallop): the
///     mask-aware evaluation loop, the real `evalStream` when no level is
///     contracted, the real `sumAll`, and the parallel drivers
///     (`parallelSumAll` / chunked evaluation / `parallelEvalStream`) at
///     several chunk counts whenever the outermost level is indexed;
///   - the compiler: `compileFullContraction` at O0/O1/O2 (policy rotated
///     per level), executed on the VM, compared against the oracle total.
///
/// A case that fails `fuzzValidate` is reported as invalid, never a
/// divergence — the executor refuses to run it rather than trip lowering
/// asserts, so hand-edited corpus files degrade gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_EXEC_H
#define ETCH_FUZZ_EXEC_H

#include "fuzz/fuzzcase.h"
#include "support/threadpool.h"

#include <string>
#include <vector>

namespace etch {

/// One semantics leg disagreeing with the oracle.
struct FuzzDivergence {
  std::string Leg;    ///< e.g. "stream/gallop/psum3", "vm/O2"
  std::string Detail; ///< expected vs got, capped human-readable dump
};

/// The outcome of running one case through the executor matrix.
struct FuzzReport {
  bool Invalid = false;        ///< case failed fuzzValidate (not a bug)
  std::string ValidationError; ///< why, when Invalid
  std::vector<FuzzDivergence> Divs;

  /// True when the case ran and every leg agreed.
  bool ok() const { return !Invalid && Divs.empty(); }
  /// True when at least one leg diverged (invalid cases are not failures).
  bool failing() const { return !Divs.empty(); }

  std::string toString() const;
};

/// Which compiled-program executor(s) the VM legs run: the tree-walking
/// reference interpreter, the register-allocated bytecode VM, or both.
/// `Both` additionally cross-checks the two directly (bit-identical
/// outputs, identical step counts, identical error text) — stricter than
/// each leg's oracle comparison, which tolerates f64 re-association.
/// `Native` runs the tree VM plus the JIT-to-native backend
/// (compiler/jit.h) with the same strict cross-check; kernels are
/// compiled step-counting so even budget exhaustion must agree. A jit
/// compile failure inside the matrix is reported as a divergence — it
/// marks an emitter gap, and the driver (etch-fuzz) verifies toolchain
/// availability up front, skipping with a distinct exit code when the
/// machine simply has no compiler.
enum class VmBackend { Tree, Bytecode, Both, Native };

/// Runs the full executor matrix on \p C, using \p Pool for the parallel
/// legs.
FuzzReport runFuzzCase(const FuzzCase &C, ThreadPool &Pool,
                       VmBackend Backend = VmBackend::Both);

/// Convenience overload using a lazily constructed shared pool.
FuzzReport runFuzzCase(const FuzzCase &C,
                       VmBackend Backend = VmBackend::Both);

/// The level-format cross-check matrix (`etch-fuzz --formats`): every
/// sparse-vector tensor is re-materialized as a hashed coordinate level
/// (formats/levels.h) and the case re-runs with
///
///   - hashed runtime streams per SearchPolicy ("hstream/<policy>/..."):
///     sorted-snapshot iteration, probe-first skip, checked against the
///     same oracle legs as the stored formats;
///   - compiled legs with every sparse vector re-bound hashed /
///     compressed / dense ("hvm"/"cvm"/"dvm" and bytecode
///     "hbvm"/"cbvm"/"dbvm"): each against the oracle total, and hashed
///     vs compressed additionally bit-for-bit (they iterate the same
///     sorted snapshot, so even f64 must agree exactly). The dense
///     override materializes the full extent and is skipped for huge
///     index spaces.
///
/// Cases without a sparse-vector tensor report ok trivially.
FuzzReport runFuzzFormats(const FuzzCase &C, ThreadPool &Pool,
                          VmBackend Backend = VmBackend::Both);

/// Convenience overload using the shared pool.
FuzzReport runFuzzFormats(const FuzzCase &C,
                          VmBackend Backend = VmBackend::Both);

/// The dense-tail tiling cross-check (`etch-fuzz --tiles`): the case is
/// lowered once at O2/gallop and run through
///
///   - the tree VM (the oracle-anchored reference for output bits);
///   - the native backend uncounted and untiled ("tiles/nvm/t0");
///   - the native backend with `JitOptions::TileDenseTails` at a small and
///     a large tile ("tiles/nvm/t3", "tiles/nvm/t1024"), i.e. the blocked
///     loop emission the planner's kernel schedules enable.
///
/// Every native leg is checked against the oracle total, every tiled leg
/// bit-for-bit (values and error text) against the untiled leg, and the
/// untiled leg bit-for-bit against the tree VM — the blocked transform
/// must be completely invisible. Uncounted kernels have no step parity,
/// so steps are not compared. Requires a toolchain (the driver checks
/// jitToolchain() up front); a source-size decline skips the case.
FuzzReport runFuzzTiles(const FuzzCase &C);

/// The oracle's fully contracted total for \p C, both as exact text and as
/// a double (for the f64 tolerance). Used by the order sweep
/// (fuzz/reorder.h) to check cross-order agreement. Nullopt if the case is
/// invalid.
struct FuzzTotal {
  std::string Text;
  double Num = 0.0;
};
std::optional<FuzzTotal> fuzzOracleTotal(const FuzzCase &C);

} // namespace etch

#endif // ETCH_FUZZ_EXEC_H

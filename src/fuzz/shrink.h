//===- fuzz/shrink.h - Greedy minimization of failing cases ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing (expression, inputs) pair before it is checked into
/// the corpus. Greedy fixpoint over five passes, re-running the failure
/// predicate on every candidate and keeping only candidates that still
/// validate AND still fail:
///
///   1. wrapper hoisting — replace any node by one of its children;
///   2. tensor GC — drop tensors the expression no longer references;
///   3. entry windows — ddmin-style removal of contiguous entry runs at
///      halving granularity;
///   4. value normalization — set entry values to 1;
///   5. dimension shrinking — clamp each extent to max used coordinate + 1.
///
/// Candidates are validated with fuzzValidate before the (expensive)
/// predicate runs, so shrinking can never escape the well-typed fragment.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_FUZZ_SHRINK_H
#define ETCH_FUZZ_SHRINK_H

#include "fuzz/fuzzcase.h"

#include <functional>

namespace etch {

/// Returns true when a candidate still reproduces the failure (typically
/// `runFuzzCase(C).failing()`).
using FuzzFailPred = std::function<bool(const FuzzCase &)>;

/// A rough cost used to report shrink progress: expression nodes + stored
/// entries + tensors.
size_t fuzzCaseSize(const FuzzCase &C);

/// Greedily minimizes \p C under \p StillFails. \p MaxRounds bounds the
/// outer fixpoint (each round runs every pass once).
FuzzCase shrinkCase(FuzzCase C, const FuzzFailPred &StillFails,
                    int MaxRounds = 32);

} // namespace etch

#endif // ETCH_FUZZ_SHRINK_H

//===- fuzz/fuzzcase.cpp - Case validation and level signatures ----------===//

#include "fuzz/fuzzcase.h"

#include "support/assert.h"

#include <algorithm>
#include <set>

using namespace etch;

const char *etch::fuzzFormatName(FuzzFormat F) {
  switch (F) {
  case FuzzFormat::SparseVec:
    return "sparsevec";
  case FuzzFormat::DenseVec:
    return "densevec";
  case FuzzFormat::Csr:
    return "csr";
  case FuzzFormat::Dcsr:
    return "dcsr";
  case FuzzFormat::Csf3:
    return "csf3";
  }
  ETCH_UNREACHABLE("unknown format");
}

std::optional<FuzzFormat> etch::fuzzFormatByName(const std::string &Name) {
  for (FuzzFormat F :
       {FuzzFormat::SparseVec, FuzzFormat::DenseVec, FuzzFormat::Csr,
        FuzzFormat::Dcsr, FuzzFormat::Csf3})
    if (Name == fuzzFormatName(F))
      return F;
  return std::nullopt;
}

int etch::fuzzFormatArity(FuzzFormat F) {
  switch (F) {
  case FuzzFormat::SparseVec:
  case FuzzFormat::DenseVec:
    return 1;
  case FuzzFormat::Csr:
  case FuzzFormat::Dcsr:
    return 2;
  case FuzzFormat::Csf3:
    return 3;
  }
  ETCH_UNREACHABLE("unknown format");
}

bool etch::fuzzFormatHasDenseValues(FuzzFormat F) {
  return F == FuzzFormat::DenseVec;
}

Idx FuzzCase::dimOf(Attr A) const {
  for (const auto &[B, N] : Dims)
    if (B == A)
      return N;
  ETCH_UNREACHABLE("no extent registered for attribute");
}

const FuzzTensor *FuzzCase::tensor(const std::string &Name) const {
  for (const FuzzTensor &T : Tensors)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

TypeContext FuzzCase::types() const {
  TypeContext Out;
  for (const FuzzTensor &T : Tensors)
    Out.emplace(T.Name, T.Shp);
  return Out;
}

std::string FuzzCase::summary() const {
  std::string Out = SemiringName + " | " + (E ? E->toString() : "<null>");
  for (const FuzzTensor &T : Tensors)
    Out += " | " + T.Name + ":" + fuzzFormatName(T.Fmt) + "#" +
           std::to_string(T.Entries.size());
  return Out;
}

const std::vector<Attr> &etch::fuzzAttrUniverse() {
  // Interned here in hierarchy order; lexicographic names keep the global
  // order stable no matter who interns first.
  static const std::vector<Attr> Universe = {
      Attr::named("fza"), Attr::named("fzb"), Attr::named("fzc"),
      Attr::named("fzd")};
  return Universe;
}

uint32_t etch::fuzzMaskOf(const FuzzSig &Sig) {
  uint32_t M = 0;
  for (size_t K = 0; K < Sig.size(); ++K)
    if (Sig[K].Contracted)
      M |= 1u << K;
  return M;
}

Shape etch::fuzzIndexedShape(const FuzzSig &Sig) {
  Shape Out;
  for (const FuzzLevel &L : Sig)
    if (!L.Contracted)
      Out.push_back(L.A);
  return Out;
}

bool etch::fuzzSigContract(FuzzSig &Sig, Attr A) {
  for (FuzzLevel &L : Sig) {
    if (!L.Contracted && L.A == A) {
      L.Contracted = true;
      return true;
    }
  }
  return false;
}

void etch::fuzzSigExpandInsert(FuzzSig &Sig, Attr A) {
  int Depth = attrsBefore(fuzzIndexedShape(Sig), A);
  size_t K = 0;
  for (int Seen = 0; K < Sig.size() && Seen < Depth; ++K)
    if (!Sig[K].Contracted)
      ++Seen;
  Sig.insert(Sig.begin() + K, FuzzLevel{A, false});
}

namespace {

/// Recursive typing against the implementable fragment. Mirrors the
/// constraints asserted by streams/lower and compiler/frontend.
std::optional<FuzzTyping> typeRec(const FuzzCase &C, const ExprPtr &E,
                                  std::string &Err) {
  if (!E) {
    Err = "null expression";
    return std::nullopt;
  }
  auto Fail = [&Err](std::string Msg) -> std::optional<FuzzTyping> {
    Err = std::move(Msg);
    return std::nullopt;
  };

  switch (E->kind()) {
  case ExprKind::Var: {
    const FuzzTensor *T = C.tensor(E->varName());
    if (!T)
      return Fail("unbound variable " + E->varName());
    FuzzTyping Out;
    for (Attr A : T->Shp)
      Out.Sig.push_back({A, false});
    return Out;
  }

  case ExprKind::Mul: {
    auto L = typeRec(C, E->lhs(), Err);
    if (!L)
      return std::nullopt;
    auto R = typeRec(C, E->rhs(), Err);
    if (!R)
      return std::nullopt;
    if (L->Sig.size() != R->Sig.size() || L->Sig.empty())
      return Fail("mul operands must have equal nonzero depth");
    for (size_t K = 0; K < L->Sig.size(); ++K) {
      if (L->Sig[K].Contracted || R->Sig[K].Contracted)
        return Fail("mul over a contracted level; hoist sums first");
      if (L->Sig[K].A != R->Sig[K].A)
        return Fail("mul operands must have equal shapes");
    }
    FuzzTyping Out;
    Out.Sig = L->Sig;
    Out.Dense = shapeIntersect(L->Dense, R->Dense);
    return Out;
  }

  case ExprKind::Add: {
    auto L = typeRec(C, E->lhs(), Err);
    if (!L)
      return std::nullopt;
    auto R = typeRec(C, E->rhs(), Err);
    if (!R)
      return std::nullopt;
    if (L->Sig.size() != R->Sig.size() || L->Sig.empty())
      return Fail("add operands must have equal nonzero depth");
    for (size_t K = 0; K < L->Sig.size(); ++K) {
      if (L->Sig[K].Contracted != R->Sig[K].Contracted)
        return Fail("add operands must agree on contracted levels");
      if (!L->Sig[K].Contracted && L->Sig[K].A != R->Sig[K].A)
        return Fail("add operands must have equal shapes");
    }
    if (L->Dense != R->Dense)
      return Fail("add operands must agree on expanded attributes");
    return L; // left signature; contracted-level attrs are bookkeeping only
  }

  case ExprKind::Sum: {
    auto Cc = typeRec(C, E->lhs(), Err);
    if (!Cc)
      return std::nullopt;
    if (shapeContains(Cc->Dense, E->attr()))
      return Fail("cannot contract an expanded attribute");
    if (!fuzzSigContract(Cc->Sig, E->attr()))
      return Fail("sum over absent attribute " + E->attr().name());
    return Cc;
  }

  case ExprKind::Expand: {
    auto Cc = typeRec(C, E->lhs(), Err);
    if (!Cc)
      return std::nullopt;
    Attr A = E->attr();
    Shape Indexed = fuzzIndexedShape(Cc->Sig);
    if (shapeContains(Indexed, A))
      return Fail("expansion over existing attribute " + A.name());
    if (static_cast<int>(Cc->Sig.size()) >= FuzzMaxLevels)
      return Fail("expansion exceeds the supported level depth");
    // The lowering inserts the new level at the shallowest position after
    // `attrsBefore` indexed levels (Σ levels are passed only while the
    // count is still short) — fuzzSigExpandInsert mirrors that exactly.
    fuzzSigExpandInsert(Cc->Sig, A);
    Cc->Dense = shapeUnion(Cc->Dense, {A});
    return Cc;
  }

  case ExprKind::Rename: {
    auto Cc = typeRec(C, E->lhs(), Err);
    if (!Cc)
      return std::nullopt;
    auto Renamed = [&E](Attr A) {
      for (const auto &[From, To] : E->mapping())
        if (From == A)
          return To;
      return A;
    };
    auto FindDim = [&C](Attr A) -> std::optional<Idx> {
      for (const auto &[B, N] : C.Dims)
        if (B == A)
          return N;
      return std::nullopt;
    };
    std::set<uint32_t> Seen;
    for (const auto &[From, To] : E->mapping()) {
      if (!Seen.insert(From.id()).second)
        return Fail("duplicate source attribute in rename");
      auto DF = FindDim(From), DT = FindDim(To);
      if (!DF || !DT)
        return Fail("rename over an attribute with no registered extent");
      // A harness constraint, not a semantics one: coordinates generated
      // under `From` must stay within the registered extent of `To` (the
      // partitioners chunk by the attribute extent).
      if (*DF != *DT)
        return Fail("rename must map between equal extents");
    }
    FuzzTyping Out;
    Out.Sig = Cc->Sig;
    Attr Prev;
    for (FuzzLevel &L : Out.Sig) {
      if (L.Contracted)
        continue; // contracted attrs are gone from the relation
      L.A = Renamed(L.A);
      if (Prev.valid() && !(Prev < L.A))
        return Fail("rename must preserve the global attribute order");
      Prev = L.A;
    }
    for (Attr A : Cc->Dense)
      Out.Dense.push_back(Renamed(A));
    Out.Dense = makeShape(Out.Dense);
    if (Out.Dense.size() != Cc->Dense.size())
      return Fail("rename must not merge attributes");
    return Out;
  }
  }
  return Fail("unknown expression kind");
}

bool validTensor(const FuzzCase &C, const FuzzTensor &T, std::string &Err) {
  if (static_cast<size_t>(fuzzFormatArity(T.Fmt)) != T.Shp.size()) {
    Err = T.Name + ": format arity does not match shape";
    return false;
  }
  for (size_t I = 1; I < T.Shp.size(); ++I) {
    if (!(T.Shp[I - 1] < T.Shp[I])) {
      Err = T.Name + ": shape must follow the global attribute order";
      return false;
    }
  }
  for (Attr A : T.Shp) {
    bool Found = false;
    for (const auto &[B, N] : C.Dims)
      Found |= (B == A);
    if (!Found) {
      Err = T.Name + ": no extent for attribute " + A.name();
      return false;
    }
  }
  if (fuzzFormatHasDenseValues(T.Fmt) && C.dimOf(T.Shp[0]) > (1 << 20)) {
    Err = T.Name + ": dense storage over a huge extent";
    return false;
  }
  const FuzzEntry *Prev = nullptr;
  for (const FuzzEntry &En : T.Entries) {
    if (En.Coords.size() != T.Shp.size()) {
      Err = T.Name + ": entry arity mismatch";
      return false;
    }
    for (size_t I = 0; I < En.Coords.size(); ++I) {
      if (En.Coords[I] < 0 || En.Coords[I] >= C.dimOf(T.Shp[I])) {
        Err = T.Name + ": coordinate out of range";
        return false;
      }
    }
    if (Prev && !(Prev->Coords < En.Coords)) {
      Err = T.Name + ": entries must be sorted and distinct";
      return false;
    }
    Prev = &En;
  }
  return true;
}

} // namespace

std::optional<FuzzTyping> etch::fuzzValidate(const FuzzCase &C,
                                             std::string *Err) {
  std::string Diag;
  auto Fail = [&](const std::string &Msg) -> std::optional<FuzzTyping> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };
  for (size_t I = 0; I < C.Dims.size(); ++I) {
    if (C.Dims[I].second < 0)
      return Fail("negative attribute extent");
    if (I > 0 && !(C.Dims[I - 1].first < C.Dims[I].first))
      return Fail("extents must be sorted by attribute order");
  }
  std::set<std::string> Names;
  for (const FuzzTensor &T : C.Tensors) {
    if (!Names.insert(T.Name).second)
      return Fail("duplicate tensor name " + T.Name);
    if (!validTensor(C, T, Diag))
      return Fail(Diag);
  }
  auto Ty = typeRec(C, C.E, Diag);
  if (!Ty)
    return Fail(Diag);
  // Invariant of the stream algebra: indexed levels appear in the global
  // attribute order.
  Attr Prev;
  for (const FuzzLevel &L : Ty->Sig) {
    if (L.Contracted)
      continue;
    if (Prev.valid() && !(Prev < L.A))
      return Fail("indexed levels out of global order");
    Prev = L.A;
  }
  // Cross-check against the reference typing rules (Figure 4b).
  std::string InferErr;
  auto Sh = inferShape(C.E, C.types(), &InferErr);
  if (!Sh)
    return Fail("inferShape rejects: " + InferErr);
  if (*Sh != fuzzIndexedShape(Ty->Sig))
    return Fail("level signature disagrees with inferShape");
  return Ty;
}

//===- streams/stream.h - The indexed stream abstract data type -*- C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The indexed stream interface (Definition 5.1). An indexed stream of type
/// `a ->s R` is a machine `(σ, q0, index, value, ready, skip)`; here a
/// stream object *is* its current state (a cursor), and the functions are
/// member functions:
///
///   - `valid()`  : false exactly at the terminal state (Definition 5.10);
///   - `index()`  : the current index, a lower bound on the next ready
///                  index (monotonicity); defined while valid;
///   - `ready()`  : whether the current state emits a value;
///   - `value()`  : the emitted value — a semiring scalar for base streams
///                  or another stream for nested ones (Section 5.2);
///                  defined while valid and ready;
///   - `skip(i,r)`: advance to the first state whose index is >= i (r
///                  false) or > i (r true), never moving backwards.
///
/// Streams are cheap value types: copying one forks the cursor without
/// copying underlying data, which is what lets the evaluation semantics
/// (Definition 5.11) and the laws checkers re-run suffixes of a stream.
///
/// A *contracted* stream (`Σ_a`, Section 5.1.2) exposes
/// `Contracted == true`: its index is a dummy and evaluation sums its
/// values instead of keying them.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_STREAM_H
#define ETCH_STREAMS_STREAM_H

#include "core/krelation.h"

#include <concepts>
#include <type_traits>

namespace etch {

/// The structural interface of an indexed stream cursor.
template <typename St>
concept AnIndexedStream = requires(St Q, const St CQ, Idx I, bool R) {
  { CQ.valid() } -> std::convertible_to<bool>;
  { CQ.index() } -> std::convertible_to<Idx>;
  { CQ.ready() } -> std::convertible_to<bool>;
  CQ.value();
  Q.skip(I, R);
};

/// True when T is an indexed stream (used to detect nesting: a stream whose
/// value type is itself a stream is a nested stream).
template <typename T>
inline constexpr bool IsStreamV = AnIndexedStream<T>;

namespace detail {
template <typename T, bool = IsStreamV<T>> struct ContractedImpl {
  static constexpr bool Value = false;
};
template <typename T> struct ContractedImpl<T, true> {
  static constexpr bool Value = T::Contracted;
};
} // namespace detail

/// True when stream T is a contracted (`* ->s R`) level.
template <typename T>
inline constexpr bool IsContractedV = detail::ContractedImpl<T>::Value;

/// True when the stream provides a fast immediate-successor `next()`,
/// valid only at ready states (for a compressed level it is `++pos` — the
/// specialisation of `skip(index, true)` the paper's generated code enjoys
/// after constant folding).
template <typename St>
concept HasNext = requires(St Q) { Q.next(); };

/// The immediate successor function δ (Definition 5.3):
/// `δ(q) = skip(q, (index(q), ready(q)))`. Every evaluation loop steps a
/// stream exactly this way; ready states take the fast `next()` path when
/// the stream provides one.
template <AnIndexedStream St> void advance(St &Q) {
  if constexpr (HasNext<St>) {
    if (Q.ready()) {
      Q.next();
      return;
    }
  }
  Q.skip(Q.index(), Q.ready());
}

/// δ from a state known to be ready.
template <AnIndexedStream St> void advanceReady(St &Q) {
  if constexpr (HasNext<St>)
    Q.next();
  else
    Q.skip(Q.index(), true);
}

/// The number of levels in a stream type (counting contracted levels).
template <typename T> constexpr int streamDepth() {
  if constexpr (IsStreamV<T>)
    return 1 + streamDepth<typename T::ValueType>();
  else
    return 0;
}

/// The number of *indexed* (non-contracted) levels: the length of the
/// stream's shape τ (Definition 5.7).
template <typename T> constexpr int streamShapeLen() {
  if constexpr (IsStreamV<T>)
    return (IsContractedV<T> ? 0 : 1) +
           streamShapeLen<typename T::ValueType>();
  else
    return 0;
}

} // namespace etch

#endif // ETCH_STREAMS_STREAM_H

//===- streams/parallel.h - Data-parallel stream evaluation ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-parallel evaluation of indexed streams. The paper's `skip`
/// primitive (Definition 5.1) is exactly the hook needed to split a fused
/// contraction across cores: a stream cursor is a cheap value, so it can be
/// forked once per chunk and `skip`-ed to the start of a sub-range of the
/// outermost index space, after which each chunk runs the ordinary fused
/// serial loop of streams/eval.h. No combinator or format needs to know
/// about parallelism.
///
/// The pieces:
///
///   - `BoundedStream`: clips any (non-contracted) stream to a half-open
///     index range [Lo, Hi) — one `skip(Lo, false)` at construction plus an
///     upper-bound check in `valid()`.
///   - Partitioners producing disjoint, covering ranges of the outermost
///     level: `partitionDense` (by coordinate, for dense levels),
///     `partitionSparse` (by storage position, for compressed levels — even
///     nnz per chunk), and `partitionByPos` (by cumulative child count, for
///     CSR-style dense-over-compressed formats — even leaf nnz per chunk).
///   - Drivers `parallelSumAll` / `parallelForEach` / `parallelEvalStream`:
///     run the existing serial loops per chunk into per-chunk accumulators
///     and reduce the partials **in chunk order**, so for a fixed chunk
///     list the result is deterministic regardless of thread count. When
///     chunks partition the outer index space, `parallelEvalStream` (and
///     the per-index work of `parallelForEach`) is bit-identical to its
///     serial counterpart; a fully contracted float sum (`parallelSumAll`)
///     re-associates across chunk boundaries only, so it is deterministic
///     per chunk list and exact for exact semirings.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_PARALLEL_H
#define ETCH_STREAMS_PARALLEL_H

#include "streams/eval.h"
#include "streams/primitives.h"
#include "support/assert.h"
#include "support/threadpool.h"

#include <limits>
#include <vector>

namespace etch {

/// A half-open range [Lo, Hi) of the outermost index space.
struct IdxRange {
  Idx Lo, Hi;
};

/// The open upper bound used by the last chunk of a partition.
inline constexpr Idx IdxRangeMax = std::numeric_limits<Idx>::max();

/// Clips a stream to the index range [Lo, Hi): skips to Lo on construction
/// and reports termination once the cursor reaches Hi. Iterating the
/// bounded stream visits exactly the original stream's states with index in
/// range (lawfulness of `skip` guarantees their values are unchanged).
template <AnIndexedStream St> class BoundedStream {
  static_assert(!IsContractedV<St>,
                "a contracted level has no index space to bound");

public:
  using ValueType = typename St::ValueType;
  static constexpr bool Contracted = false;

  BoundedStream(St Inner, Idx Lo, Idx Hi)
      : Inner(std::move(Inner)), Hi(Hi) {
    this->Inner.skip(Lo, false);
  }

  bool valid() const { return Inner.valid() && Inner.index() < Hi; }
  Idx index() const { return Inner.index(); }
  bool ready() const { return Inner.ready(); }
  ValueType value() const { return Inner.value(); }
  void skip(Idx I, bool Strict) { Inner.skip(I, Strict); }

  /// Fast δ from a ready state.
  void next() { advanceReady(Inner); }

private:
  St Inner;
  Idx Hi;
};

//===----------------------------------------------------------------------===//
// Partitioners
//===----------------------------------------------------------------------===//

/// Splits the dense coordinate space [0, Size) into \p Chunks contiguous
/// ranges of near-equal width (trailing chunks may be empty when
/// Chunks > Size).
inline std::vector<IdxRange> partitionDense(Idx Size, size_t Chunks) {
  ETCH_ASSERT(Chunks >= 1, "need at least one chunk");
  // Quotient/remainder split: the first Size % Chunks chunks are one index
  // wider. The tempting `Size * (C + 1) / Chunks` form overflows once Size
  // approaches the Idx maximum, leaving the top of the coordinate space in
  // no chunk (found by differential fuzzing: parallel legs silently dropped
  // entries with coordinates past the wrap point).
  Idx N = static_cast<Idx>(Chunks);
  Idx Q = Size / N, R = Size % N;
  std::vector<IdxRange> Out;
  Out.reserve(Chunks);
  Idx Lo = 0;
  for (Idx C = 0; C < N; ++C) {
    Idx Hi = Lo + Q + (C < R ? 1 : 0);
    Out.push_back({Lo, Hi});
    Lo = Hi;
  }
  return Out;
}

/// Splits a compressed level into \p Chunks coordinate ranges holding
/// near-equal numbers of stored entries, using the stream's storage
/// positions: chunk boundaries fall on position boundaries and translate to
/// coordinate bounds via coordAt. Covers [0, IdxRangeMax).
template <typename ValueFn, SearchPolicy P>
std::vector<IdxRange> partitionSparse(const SparseStream<ValueFn, P> &S,
                                      size_t Chunks) {
  ETCH_ASSERT(Chunks >= 1, "need at least one chunk");
  size_t Begin = S.position(), End = S.positionEnd();
  size_t Len = End - Begin;
  std::vector<IdxRange> Out;
  Out.reserve(Chunks);
  Idx Lo = 0;
  for (size_t C = 0; C < Chunks; ++C) {
    size_t Split = Begin + Len * (C + 1) / Chunks;
    Idx Hi = (C + 1 == Chunks || Split >= End) ? IdxRangeMax
                                               : S.coordAt(Split);
    // Coordinates are strictly increasing, so distinct position boundaries
    // give distinct coordinates; equal boundaries give an empty chunk.
    Out.push_back({Lo, Hi});
    Lo = Hi;
  }
  return Out;
}

/// Splits the dense coordinate space [0, N) into \p Chunks ranges holding
/// near-equal numbers of *children*, where \p Pos is a CSR-style offset
/// array (Pos[i]..Pos[i+1) are the children of coordinate i, length N + 1).
/// This balances nnz across chunks for dense-over-compressed formats where
/// plain coordinate splitting would be skew-sensitive.
inline std::vector<IdxRange> partitionByPos(const size_t *Pos, Idx N,
                                            size_t Chunks) {
  ETCH_ASSERT(Chunks >= 1, "need at least one chunk");
  size_t Total = Pos[static_cast<size_t>(N)];
  std::vector<IdxRange> Out;
  Out.reserve(Chunks);
  Idx Lo = 0;
  for (size_t C = 0; C < Chunks; ++C) {
    Idx Hi = N;
    if (C + 1 < Chunks) {
      // First coordinate whose cumulative child count reaches the target.
      size_t Target = Total * (C + 1) / Chunks;
      Idx A = Lo, B = N;
      while (A < B) {
        Idx Mid = A + (B - A) / 2;
        if (Pos[static_cast<size_t>(Mid)] < Target)
          A = Mid + 1;
        else
          B = Mid;
      }
      Hi = A;
    }
    Out.push_back({Lo, Hi});
    Lo = Hi;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Parallel drivers
//===----------------------------------------------------------------------===//

/// Parallel `sumAll`: forks the cursor once per chunk, sums each bounded
/// sub-stream with the serial fused loop, and folds the per-chunk partials
/// in chunk order — deterministic for a fixed chunk list regardless of the
/// pool's thread count. \p Chunks must be disjoint and cover the stream's
/// outer index space.
template <Semiring S, AnIndexedStream St>
typename S::Value parallelSumAll(ThreadPool &Pool, const St &Q,
                                 const std::vector<IdxRange> &Chunks) {
  using V = typename S::Value;
  std::vector<V> Partials(Chunks.size(), S::zero());
  Pool.parallelFor(Chunks.size(), [&](size_t C) {
    Partials[C] =
        sumAll<S>(BoundedStream<St>(Q, Chunks[C].Lo, Chunks[C].Hi));
  });
  V Acc = S::zero();
  for (const V &P : Partials)
    Acc = S::add(Acc, P);
  return Acc;
}

/// Parallel `forEach`: drives one level of the stream chunk-parallel,
/// invoking `Body(index, value)` at every ready state. Within a chunk the
/// order and association are the serial ones; distinct chunks run
/// concurrently, so Body's effects at distinct indices must be disjoint
/// (e.g. writing distinct output rows).
template <AnIndexedStream St, typename F>
void parallelForEach(ThreadPool &Pool, const St &Q,
                     const std::vector<IdxRange> &Chunks, F &&Body) {
  Pool.parallelFor(Chunks.size(), [&](size_t C) {
    forEach(BoundedStream<St>(Q, Chunks[C].Lo, Chunks[C].Hi), Body);
  });
}

/// Parallel `evalStream`: evaluates each bounded sub-stream into its own
/// KRelation, then merges in chunk order. Because the chunks partition the
/// outer index space, every output tuple is produced by exactly one chunk
/// with the serial association — the merged result is bit-identical to
/// `evalStream(Q, Sh)`.
template <Semiring S, AnIndexedStream St>
KRelation<S> parallelEvalStream(ThreadPool &Pool, const St &Q,
                                const Shape &Sh,
                                const std::vector<IdxRange> &Chunks) {
  std::vector<KRelation<S>> Parts(Chunks.size(), KRelation<S>(Sh));
  Pool.parallelFor(Chunks.size(), [&](size_t C) {
    Parts[C] = evalStream<S>(
        BoundedStream<St>(Q, Chunks[C].Lo, Chunks[C].Hi), Sh);
  });
  KRelation<S> Out(Sh);
  for (const KRelation<S> &P : Parts)
    for (const auto &[T, V] : P.entries())
      Out.insert(T, V);
  return Out;
}

} // namespace etch

#endif // ETCH_STREAMS_PARALLEL_H

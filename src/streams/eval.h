//===- streams/eval.h - Stream evaluation (Definition 5.11) ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation function `[[−]] : S -> T` (Section 5.3): the meaning of a
/// stream is the sum over its reachable ready states of `index ↦ value`
/// (indexed levels) or of the bare values (contracted levels). `evalStream`
/// materialises that sum as a KRelation and is the bridge the correctness
/// theorem (Theorem 6.1) is stated over; the property tests check that it
/// is a homomorphism.
///
/// The same recursion, specialised to consumers instead of maps, yields the
/// fused execution drivers used by the benchmarks: `sumAll` (a full
/// contraction — the generated code of Figure 2 is exactly this loop after
/// inlining), and `forEach` (one level of destination passing).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_EVAL_H
#define ETCH_STREAMS_EVAL_H

#include "core/krelation.h"
#include "streams/stream.h"
#include "support/assert.h"

namespace etch {

namespace detail {

template <Semiring S, AnIndexedStream St>
void evalRec(St Q, KRelation<S> &Out, Tuple &Prefix) {
  using V = typename St::ValueType;
  // Figure 15's loop shape: ready states emit then take the strict skip
  // (fast successor); blocked states take the non-strict skip.
  while (Q.valid()) {
    if (Q.ready()) {
      if constexpr (!IsContractedV<St>)
        Prefix.push_back(Q.index());
      if constexpr (IsStreamV<V>)
        evalRec(Q.value(), Out, Prefix);
      else
        Out.insert(Prefix, Q.value());
      if constexpr (!IsContractedV<St>)
        Prefix.pop_back();
      advanceReady(Q);
    } else {
      Q.skip(Q.index(), false);
    }
  }
}

} // namespace detail

/// Evaluates stream \p Q into a K-relation over \p Sh. The shape must list
/// the stream's indexed levels outermost-first, and — because valid streams
/// respect the global attribute order (Definition 5.7) — in sorted order.
template <Semiring S, AnIndexedStream St>
KRelation<S> evalStream(St Q, const Shape &Sh) {
  ETCH_ASSERT(static_cast<int>(Sh.size()) == streamShapeLen<St>(),
              "shape length must match the stream's indexed depth");
  KRelation<S> Out(Sh);
  Tuple Prefix;
  detail::evalRec(std::move(Q), Out, Prefix);
  Out.pruneZeros();
  return Out;
}

/// Sums every value a (nested) stream produces: the value of the fully
/// contracted expression `Σ_{a1} ... Σ_{ak} e`. Because summation ignores
/// indices, callers may skip wrapping levels in ContractStream. This is the
/// execution driver for scalar-result kernels (dot products, inner
/// products, triangle counting, TPC-H aggregates).
template <Semiring S, AnIndexedStream St>
typename S::Value sumAll(St Q) {
  using V = typename St::ValueType;
  typename S::Value Acc = S::zero();
  while (Q.valid()) {
    if (Q.ready()) {
      if constexpr (IsStreamV<V>)
        Acc = S::add(Acc, sumAll<S>(Q.value()));
      else
        Acc = S::add(Acc, Q.value());
      advanceReady(Q);
    } else {
      Q.skip(Q.index(), false);
    }
  }
  return Acc;
}

/// Drives one level of a stream, invoking `Body(index, value)` at every
/// ready state: the destination-passing hook for writing results into
/// caller-chosen data structures (Section 7.3).
template <AnIndexedStream St, typename F> void forEach(St Q, F &&Body) {
  while (Q.valid()) {
    if (Q.ready()) {
      Body(Q.index(), Q.value());
      advanceReady(Q);
    } else {
      Q.skip(Q.index(), false);
    }
  }
}

/// Counts the number of δ-transitions taken to exhaust the stream: the cost
/// model used by the asymptotic-complexity discussions (Section 5.4.1).
template <AnIndexedStream St> int64_t countTransitions(St Q) {
  int64_t N = 0;
  while (Q.valid()) {
    advance(Q);
    ++N;
  }
  return N;
}

} // namespace etch

#endif // ETCH_STREAMS_EVAL_H

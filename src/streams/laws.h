//===- streams/laws.h - Runtime checkers for stream laws -------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-checkable versions of the proof obligations of Section 6: the
/// monotonicity, strict monotonicity (Section 6.2), and lawfulness
/// (Section 6.1) predicates on streams. The paper proves these in Lean for
/// its combinators and asks implementers of new data structures to check
/// them; here they are executable and exercised by the property tests over
/// primitives and randomly composed streams, playing the Lean proof's role.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_LAWS_H
#define ETCH_STREAMS_LAWS_H

#include "streams/eval.h"

#include <vector>

namespace etch {

/// Walks the δ-trajectory of \p Q and checks monotonicity: the index never
/// decreases, and after a *ready* state it strictly increases (strict
/// monotonicity, Section 6.2 — required for multiplication to be sound).
/// Also confirms the trajectory reaches a terminal state within
/// \p MaxSteps (finiteness, Definition 5.10).
template <AnIndexedStream St>
bool checkStrictMonotone(St Q, int64_t MaxSteps = 1 << 20) {
  int64_t Steps = 0;
  while (Q.valid()) {
    if (++Steps > MaxSteps)
      return false; // Did not terminate: treat as a law violation.
    Idx I = Q.index();
    bool WasReady = Q.ready();
    advance(Q);
    if (!Q.valid())
      break;
    if (Q.index() < I)
      return false;
    if (WasReady && !IsContractedV<St> && Q.index() <= I)
      return false;
  }
  return true;
}

/// Checks that `skip` never rewinds: for each probe (I, R), skipping a copy
/// of the stream leaves its index at >= the probe bound (when still valid)
/// and at >= the original index.
template <AnIndexedStream St>
bool checkSkipMonotone(const St &Q, const std::vector<std::pair<Idx, bool>>
                                        &Probes) {
  for (auto [I, R] : Probes) {
    St C = Q;
    if (!C.valid())
      continue;
    Idx Before = C.index();
    C.skip(I, R);
    if (!C.valid())
      continue;
    if (C.index() < Before)
      return false;
  }
  return true;
}

/// Lawfulness (Section 6.1): `skip(q, (i, r))` must not change the
/// evaluation at any index j with (i, r) <= (j, 0) lexicographically — that
/// is, at j > i, and also at j == i when r is false. Checks one probe by
/// evaluating the original and the skipped stream over shape \p Sh and
/// comparing all entries whose first coordinate passes the bound.
template <Semiring S, AnIndexedStream St>
bool checkSkipLawful(const St &Q, const Shape &Sh, Idx I, bool R) {
  static_assert(!IsContractedV<St>,
                "lawfulness probes apply to indexed outer levels");
  KRelation<S> Full = evalStream<S>(Q, Sh);
  St C = Q;
  C.skip(I, R);
  KRelation<S> Skipped = evalStream<S>(C, Sh);
  auto Unaffected = [I, R](const Tuple &T) {
    return T[0] > I || (T[0] == I && !R);
  };
  for (const auto &[T, V] : Full.entries())
    if (Unaffected(T) && Skipped.at(T) != V)
      return false;
  for (const auto &[T, V] : Skipped.entries())
    if (Unaffected(T) && Full.at(T) != V)
      return false;
  return true;
}

} // namespace etch

#endif // ETCH_STREAMS_LAWS_H

//===- streams/primitives.h - Primitive indexed streams --------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primitive streams of Example 5.2 and Section 5.1.3:
///
///   - SparseStream: iterates a sorted coordinate array (a compressed
///     level). Its skip function is parameterised by a search policy —
///     linear scan, binary search, or galloping — which is the knob behind
///     the paper's `smul` result (binary-search skip gives an asymptotic
///     win at high sparsity) and our ablation bench.
///   - DenseStream: iterates 0..N-1, always ready; the value is computed
///     from the index by a functor, which also covers implicitly
///     represented streams (user-defined functions and predicates,
///     Section 7.2).
///   - RepeatStream: the expansion operator ↑a (Section 5.1.3) — always
///     ready, same value at every index.
///   - SingletonStream: a one-entry stream, useful in tests.
///   - HashedStream: a hashed level (formats/levels.h) — iterates the
///     sorted snapshot like SparseStream, but `skip` probes the
///     coordinate->rank table first, locating exact hits in O(1).
///
/// Primitive streams hold raw pointers into storage owned elsewhere (the
/// `formats` library or the caller); they are trivially copyable cursors.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_PRIMITIVES_H
#define ETCH_STREAMS_PRIMITIVES_H

#include "streams/stream.h"
#include "support/assert.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace etch {

/// How a compressed level implements `skip` (Example 5.2 allows any method
/// that lands on the first coordinate >= the target).
enum class SearchPolicy {
  Linear,  ///< Scan forward one coordinate at a time.
  Binary,  ///< Binary-search the remaining range on every skip.
  Gallop,  ///< Exponential probing then binary search (adaptive).
};

namespace detail {

/// Returns the first P in [Pos, End) with Crd[P] >= Lo (Lo already folded
/// the strictness bit: callers pass I + R conceptually).
template <SearchPolicy Policy>
size_t searchFrom(const Idx *Crd, size_t Pos, size_t End, Idx I, bool Strict) {
  auto Reached = [&](size_t P) {
    return Strict ? Crd[P] > I : Crd[P] >= I;
  };
  if constexpr (Policy == SearchPolicy::Linear) {
    while (Pos < End && !Reached(Pos))
      ++Pos;
    return Pos;
  } else if constexpr (Policy == SearchPolicy::Binary) {
    size_t Lo = Pos, Hi = End;
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Reached(Mid))
        Hi = Mid;
      else
        Lo = Mid + 1;
    }
    return Lo;
  } else {
    // Gallop: double the step until we overshoot, then binary search the
    // bracketed range. O(log d) for a skip of distance d. The probe offset
    // is clamped to the remaining range *before* forming Pos + Step:
    // repeated doubling against a repeatUnbounded-scale extent would
    // otherwise wrap Pos + Step around size_t and probe below Pos.
    if (Pos >= End || Reached(Pos))
      return Pos;
    size_t MaxOff = End - 1 - Pos; // largest in-range probe offset
    size_t Prev = Pos, Hi = End;
    for (size_t Step = 1; Step <= MaxOff; Step *= 2) {
      if (Reached(Pos + Step)) {
        Hi = Pos + Step;
        break;
      }
      Prev = Pos + Step;
      if (Step > MaxOff / 2) // next doubling would leave [Pos, End)
        break;
    }
    size_t Lo = Prev + 1;
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Reached(Mid))
        Hi = Mid;
      else
        Lo = Mid + 1;
    }
    return Lo;
  }
}

} // namespace detail

/// A compressed (sparse) level: positions Begin..End of a sorted coordinate
/// array Crd, emitting MakeValue(P) at coordinate Crd[P].
template <typename ValueFn, SearchPolicy Policy = SearchPolicy::Linear>
class SparseStream {
public:
  using ValueType = std::invoke_result_t<ValueFn, size_t>;
  static constexpr bool Contracted = false;

  SparseStream() : Crd(nullptr), Pos(0), End(0), MakeValue() {}
  SparseStream(const Idx *Crd, size_t Begin, size_t End, ValueFn MakeValue)
      : Crd(Crd), Pos(Begin), End(End), MakeValue(MakeValue) {}

  bool valid() const { return Pos < End; }
  Idx index() const { return Crd[Pos]; }
  bool ready() const { return Pos < End; }
  ValueType value() const { return MakeValue(Pos); }

  void skip(Idx I, bool Strict) {
    Pos = detail::searchFrom<Policy>(Crd, Pos, End, I, Strict);
  }

  /// Fast δ from a ready state: coordinates are strictly increasing, so
  /// the immediate successor is simply the next position.
  void next() { ++Pos; }

  /// The storage position of the cursor (used by destination passing and
  /// the position-range partitioner in streams/parallel.h).
  size_t position() const { return Pos; }

  /// One past the last storage position this cursor will visit.
  size_t positionEnd() const { return End; }

  /// The coordinate stored at position \p P (Pos <= P < End); lets the
  /// partitioner translate position boundaries into coordinate bounds.
  Idx coordAt(size_t P) const { return Crd[P]; }

private:
  const Idx *Crd;
  size_t Pos, End;
  ValueFn MakeValue;
};

/// A dense level over indices 0..Size-1: always ready, value computed from
/// the index. With a capturing functor this doubles as the paper's
/// implicitly-represented streams (user-defined functions, predicates).
template <typename ValueFn> class DenseStream {
public:
  using ValueType = std::invoke_result_t<ValueFn, Idx>;
  static constexpr bool Contracted = false;

  DenseStream() : Pos(0), Size(0), MakeValue() {}
  DenseStream(Idx Size, ValueFn MakeValue)
      : Pos(0), Size(Size), MakeValue(MakeValue) {}

  bool valid() const { return Pos < Size; }
  Idx index() const { return Pos; }
  bool ready() const { return Pos < Size; }
  ValueType value() const { return MakeValue(Pos); }

  void skip(Idx I, bool Strict) {
    // Saturate the strict successor: with repeatUnbounded-sized extents an
    // adversarial I near the Idx maximum would make I + 1 wrap (signed
    // overflow). A saturated target still lands past any finite Size.
    Idx Target = I;
    if (Strict && Target != std::numeric_limits<Idx>::max())
      ++Target;
    if (Target > Pos)
      Pos = Target;
  }

  /// Fast δ from a ready state.
  void next() { ++Pos; }

private:
  Idx Pos, Size;
  ValueFn MakeValue;
};

/// The expansion operator ↑a (Section 5.1.3): always ready, emits the same
/// value at every index of 0..Size-1. The value is stored once and copied
/// out on demand — no recomputation, exactly as the paper prescribes.
template <typename V> class RepeatStream {
public:
  using ValueType = V;
  static constexpr bool Contracted = false;

  RepeatStream() : Pos(0), Size(0), Val() {}
  RepeatStream(Idx Size, V Val) : Pos(0), Size(Size), Val(std::move(Val)) {}

  bool valid() const { return Pos < Size; }
  Idx index() const { return Pos; }
  bool ready() const { return Pos < Size; }
  ValueType value() const { return Val; }

  void skip(Idx I, bool Strict) {
    // Saturating strict successor; see DenseStream::skip.
    Idx Target = I;
    if (Strict && Target != std::numeric_limits<Idx>::max())
      ++Target;
    if (Target > Pos)
      Pos = Target;
  }

  /// Fast δ from a ready state.
  void next() { ++Pos; }

private:
  Idx Pos, Size;
  V Val;
};

/// A practically-unbounded expansion for use under multiplication, where the
/// partner stream bounds iteration (the paper's infinite index sets).
template <typename V> RepeatStream<V> repeatUnbounded(V Val) {
  return RepeatStream<V>(static_cast<Idx>(1) << 62, std::move(Val));
}

/// A stream with exactly one entry (I, V).
template <typename V> class SingletonStream {
public:
  using ValueType = V;
  static constexpr bool Contracted = false;

  SingletonStream() : I(0), Done(true), Val() {}
  SingletonStream(Idx I, V Val) : I(I), Done(false), Val(std::move(Val)) {}

  bool valid() const { return !Done; }
  Idx index() const { return I; }
  bool ready() const { return !Done; }
  ValueType value() const { return Val; }

  void skip(Idx J, bool Strict) {
    if (Strict ? J >= I : J > I)
      Done = true;
  }

  /// Fast δ from a ready state.
  void next() { Done = true; }

private:
  Idx I;
  bool Done;
  V Val;
};

/// A hashed level (formats/levels.h) as a stream: iterates the *sorted
/// snapshot* (positions Pos..End of Crd), so monotonicity and the stream
/// laws hold exactly as for SparseStream — but `skip` first probes the
/// open-addressing coordinate->rank table. An exact coordinate hit locates
/// its rank in O(1) (strict skips land one past it); only misses fall back
/// to the \p Policy search over the snapshot. TabKey holds the table's
/// keys (-1 empty), TabPos the sorted rank per key, TabSize the bucket
/// count (a power of two).
template <typename ValueFn, SearchPolicy Policy = SearchPolicy::Linear>
class HashedStream {
public:
  using ValueType = std::invoke_result_t<ValueFn, size_t>;
  static constexpr bool Contracted = false;

  HashedStream()
      : Crd(nullptr), Pos(0), End(0), MakeValue(), TabKey(nullptr),
        TabPos(nullptr), TabSize(0) {}
  HashedStream(const Idx *Crd, size_t Begin, size_t End, ValueFn MakeValue,
               const int64_t *TabKey, const size_t *TabPos, size_t TabSize)
      : Crd(Crd), Pos(Begin), End(End), MakeValue(MakeValue), TabKey(TabKey),
        TabPos(TabPos), TabSize(TabSize) {}

  bool valid() const { return Pos < End; }
  Idx index() const { return Crd[Pos]; }
  bool ready() const { return Pos < End; }
  ValueType value() const { return MakeValue(Pos); }

  void skip(Idx I, bool Strict) {
    if (Pos >= End)
      return;
    // Probe: Fibonacci hash, linear wraparound (the same sequence the
    // CoordHashTable writer used, so an existing key is always found).
    size_t Mask = TabSize - 1;
    size_t H = static_cast<size_t>(
        (static_cast<uint64_t>(I) * 0x9e3779b97f4a7c15ULL) >>
        (64 - std::countr_zero(static_cast<uint64_t>(TabSize))));
    while (TabKey[H] != -1 && TabKey[H] != I)
      H = (H + 1) & Mask;
    if (TabKey[H] == I) {
      // Exact hit: the snapshot rank is stored in the table. Non-strict
      // lands on it; strict lands one past. max() keeps skip monotone.
      size_t Target = TabPos[H] + (Strict ? 1 : 0);
      if (Target > Pos)
        Pos = Target;
      return;
    }
    Pos = detail::searchFrom<Policy>(Crd, Pos, End, I, Strict);
  }

  /// Fast δ from a ready state: the snapshot is sorted, so the successor
  /// is the next rank.
  void next() { ++Pos; }

  size_t position() const { return Pos; }
  size_t positionEnd() const { return End; }
  Idx coordAt(size_t P) const { return Crd[P]; }

private:
  const Idx *Crd;
  size_t Pos, End;
  ValueFn MakeValue;
  const int64_t *TabKey;
  const size_t *TabPos;
  size_t TabSize;
};

/// Helper: a leaf hashed-vector stream over a sorted (Crd, Vals) snapshot
/// plus its coordinate->rank probe table.
template <typename V, SearchPolicy Policy = SearchPolicy::Linear>
auto hashedVecStream(const Idx *Crd, const V *Vals, size_t Len,
                     const int64_t *TabKey, const size_t *TabPos,
                     size_t TabSize) {
  auto Get = [Vals](size_t P) { return Vals[P]; };
  return HashedStream<decltype(Get), Policy>(Crd, 0, Len, Get, TabKey,
                                             TabPos, TabSize);
}

/// Helper: a leaf sparse-vector stream over parallel (Crd, Vals) arrays.
template <typename V, SearchPolicy Policy = SearchPolicy::Linear>
auto sparseVecStream(const Idx *Crd, const V *Vals, size_t Len) {
  auto Get = [Vals](size_t P) { return Vals[P]; };
  return SparseStream<decltype(Get), Policy>(Crd, 0, Len, Get);
}

/// Helper: a leaf dense-vector stream over a value array of length Size.
template <typename V> auto denseVecStream(const V *Vals, Idx Size) {
  auto Get = [Vals](Idx I) { return Vals[I]; };
  return DenseStream<decltype(Get)>(Size, Get);
}

} // namespace etch

#endif // ETCH_STREAMS_PRIMITIVES_H

//===- streams/combinators.h - Stream composition operators ----*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contraction operators on indexed streams (Section 5.1):
///
///   - MulStream (Definition 5.4): the intersection-optimised product. Its
///     index is the max of its operands' indices and it is ready only when
///     both operands are ready at the same index; its δ therefore drives
///     every operand's skip with combined information — the multiway
///     leapfrog behind the worst-case-optimal join result (Section 5.4.2).
///   - AddStream: the union-merge. Its index is the min; a value is emitted
///     from one side alone only when that side's index is strictly
///     smaller — at a tied index the sum must wait until both sides are
///     ready or one moves past (a not-ready state at index i may still
///     produce a value at i later, so emitting early would drop it).
///   - ContractStream (Section 5.1.2): Σ — forgets the index (the dummy
///     attribute *); `skip(*, r)` becomes `skip(index(q), r)`.
///   - MapStream (Section 5.2): the functorial action on values, used to
///     apply Σ / ↑ at inner levels of a nested stream (`map^k`).
///
/// Multiplication and addition recurse structurally through nested streams:
/// when operand values are themselves streams the combinator's value is the
/// combinator of the inner streams, exactly the "generalises with no
/// difficulty" construction of Section 5.2.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_STREAMS_COMBINATORS_H
#define ETCH_STREAMS_COMBINATORS_H

#include "core/semiring.h"
#include "streams/stream.h"
#include "support/assert.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace etch {

//===----------------------------------------------------------------------===//
// Multiplication
//===----------------------------------------------------------------------===//

template <Semiring S, AnIndexedStream A, AnIndexedStream B> class MulStream;

/// Builds the product of two streams (or, at the leaves, of two scalars).
template <Semiring S, typename A, typename B> auto mulValues(A Va, B Vb) {
  if constexpr (IsStreamV<A>)
    return MulStream<S, A, B>(std::move(Va), std::move(Vb));
  else
    return S::mul(Va, Vb);
}

/// The product stream of Definition 5.4, extended level-wise to nested
/// streams. Operands must have the same level structure; contracted levels
/// may not be multiplied (a product of sums is not a sum of pairwise
/// products — the frontend hoists contractions out of products first).
template <Semiring S, AnIndexedStream A, AnIndexedStream B> class MulStream {
  static_assert(!IsContractedV<A> && !IsContractedV<B>,
                "cannot multiply contracted (Σ) levels; hoist sums out of "
                "products first");

public:
  using ValueType = decltype(mulValues<S>(std::declval<A>().value(),
                                          std::declval<B>().value()));
  static constexpr bool Contracted = false;

  MulStream(A La, B Rb) : La(std::move(La)), Rb(std::move(Rb)) {}

  bool valid() const { return La.valid() && Rb.valid(); }

  Idx index() const { return std::max(La.index(), Rb.index()); }

  bool ready() const {
    return La.ready() && Rb.ready() && La.index() == Rb.index();
  }

  ValueType value() const { return mulValues<S>(La.value(), Rb.value()); }

  void skip(Idx I, bool Strict) {
    La.skip(I, Strict);
    Rb.skip(I, Strict);
  }

  /// Fast δ from a ready state: both operands are ready at the shared
  /// index, so both take their own successor.
  void next() {
    advanceReady(La);
    advanceReady(Rb);
  }

private:
  A La;
  B Rb;
};

/// Convenience factory with deduction.
template <Semiring S, AnIndexedStream A, AnIndexedStream B>
MulStream<S, A, B> mulStreams(A La, B Rb) {
  return MulStream<S, A, B>(std::move(La), std::move(Rb));
}

//===----------------------------------------------------------------------===//
// Generalised join (multiplication with a custom leaf combiner)
//===----------------------------------------------------------------------===//

template <typename F, AnIndexedStream A, AnIndexedStream B> class JoinStream;

template <typename F, typename A, typename B>
auto joinValues(F Fn, A Va, B Vb) {
  // Recurse only while *both* sides are still streams; a stream-vs-scalar
  // pair ends the structural recursion and the combiner decides (e.g.
  // KeepLeft keeps a whole substream gated by an indicator's leaf).
  if constexpr (IsStreamV<A> && IsStreamV<B>)
    return JoinStream<F, A, B>(std::move(Fn), std::move(Va), std::move(Vb));
  else
    return Fn(std::move(Va), std::move(Vb));
}

/// Identical iteration semantics to MulStream (Definition 5.4), but the
/// leaves combine with an arbitrary functor instead of a semiring's
/// multiplication. This is how relational queries pair heterogeneous
/// payloads (e.g. a lineitem record with a supplycost) while still getting
/// the multiway intersection — the paper's user-defined functions applied
/// at the scalar level (Section 7.2).
template <typename F, AnIndexedStream A, AnIndexedStream B> class JoinStream {
  static_assert(!IsContractedV<A> && !IsContractedV<B>,
                "cannot join contracted (Σ) levels");

public:
  using ValueType = decltype(joinValues(std::declval<F>(),
                                        std::declval<A>().value(),
                                        std::declval<B>().value()));
  static constexpr bool Contracted = false;

  JoinStream(F Fn, A La, B Rb)
      : Fn(std::move(Fn)), La(std::move(La)), Rb(std::move(Rb)) {}

  bool valid() const { return La.valid() && Rb.valid(); }
  Idx index() const { return std::max(La.index(), Rb.index()); }
  bool ready() const {
    return La.ready() && Rb.ready() && La.index() == Rb.index();
  }
  ValueType value() const { return joinValues(Fn, La.value(), Rb.value()); }
  void skip(Idx I, bool Strict) {
    La.skip(I, Strict);
    Rb.skip(I, Strict);
  }

  /// Fast δ from a ready state (see MulStream).
  void next() {
    advanceReady(La);
    advanceReady(Rb);
  }

private:
  F Fn;
  A La;
  B Rb;
};

template <typename F, AnIndexedStream A, AnIndexedStream B>
JoinStream<F, A, B> joinStreams(F Fn, A La, B Rb) {
  return JoinStream<F, A, B>(std::move(Fn), std::move(La), std::move(Rb));
}

/// A leaf combiner keeping the left payload (joins against indicator
/// relations).
struct KeepLeft {
  template <typename A, typename B> A operator()(A Va, B) const {
    return Va;
  }
};

/// A leaf combiner keeping the right payload.
struct KeepRight {
  template <typename A, typename B> B operator()(A, B Vb) const {
    return Vb;
  }
};

/// A leaf combiner pairing both payloads.
struct PairBoth {
  template <typename A, typename B>
  std::pair<A, B> operator()(A Va, B Vb) const {
    return {std::move(Va), std::move(Vb)};
  }
};

//===----------------------------------------------------------------------===//
// Addition
//===----------------------------------------------------------------------===//

template <Semiring S, AnIndexedStream A, AnIndexedStream B> class AddStream;

namespace detail {

/// Builds the sum of two optional inner values (streams recurse; scalars
/// use the semiring; an absent side contributes zero / an empty stream).
template <Semiring S, typename A, typename B>
auto addValues(std::optional<A> Va, std::optional<B> Vb) {
  if constexpr (IsStreamV<A>) {
    return AddStream<S, A, B>(std::move(Va), std::move(Vb));
  } else {
    // Coerce to the semiring's value type: leaf storage may be narrower
    // (e.g. uint8_t indicators under the boolean semiring).
    if (Va && Vb)
      return S::add(*Va, *Vb);
    if (Va)
      return static_cast<typename S::Value>(*Va);
    if (Vb)
      return static_cast<typename S::Value>(*Vb);
    return S::zero();
  }
}

} // namespace detail

/// The union-merge of two streams of identical level structure (including
/// contracted levels, whose indices all compare equal). Either side may be
/// absent (empty), which is how single-sided values propagate into nested
/// levels.
template <Semiring S, AnIndexedStream A, AnIndexedStream B> class AddStream {
  static_assert(IsContractedV<A> == IsContractedV<B>,
                "addition operands must agree on contracted levels");

public:
  using ValueType = decltype(detail::addValues<S>(
      std::declval<std::optional<decltype(std::declval<A>().value())>>(),
      std::declval<std::optional<decltype(std::declval<B>().value())>>()));
  static constexpr bool Contracted = IsContractedV<A>;

  AddStream(std::optional<A> La, std::optional<B> Rb)
      : La(std::move(La)), Rb(std::move(Rb)) {}

  bool valid() const { return aValid() || bValid(); }

  Idx index() const {
    if (aValid() && bValid())
      return std::min(La->index(), Rb->index());
    return aValid() ? La->index() : Rb->index();
  }

  bool ready() const {
    bool Av = aValid(), Bv = bValid();
    if (Av && Bv) {
      Idx Ia = La->index(), Ib = Rb->index();
      if (Ia < Ib)
        return La->ready();
      if (Ib < Ia)
        return Rb->ready();
      return La->ready() && Rb->ready();
    }
    return Av ? La->ready() : Rb->ready();
  }

  ValueType value() const {
    bool Av = aValid(), Bv = bValid();
    using VA = decltype(La->value());
    using VB = decltype(Rb->value());
    std::optional<VA> Va;
    std::optional<VB> Vb;
    // emplace, not operator=: lambda-closure members make stream types
    // copy-constructible but not copy-assignable.
    if (Av && Bv) {
      Idx Ia = La->index(), Ib = Rb->index();
      if (Ia <= Ib)
        Va.emplace(La->value());
      if (Ib <= Ia)
        Vb.emplace(Rb->value());
    } else if (Av) {
      Va.emplace(La->value());
    } else {
      Vb.emplace(Rb->value());
    }
    return detail::addValues<S>(std::move(Va), std::move(Vb));
  }

  void skip(Idx I, bool Strict) {
    if (aValid())
      La->skip(I, Strict);
    if (bValid())
      Rb->skip(I, Strict);
  }

  /// Fast δ from a ready state, aware of tied indices: only the side(s)
  /// that emitted — those whose index equals the merged index() — advance,
  /// each through its own fast path. A side waiting at a strictly larger
  /// index is already past the strict-skip target, so the fallback
  /// `skip(index(), true)` would leave it in place anyway; eliding the call
  /// avoids re-running that operand's policy search from a ready state.
  void next() {
    bool Av = aValid(), Bv = bValid();
    if (Av && Bv) {
      Idx Ia = La->index(), Ib = Rb->index();
      if (Ia <= Ib)
        advanceReady(*La);
      if (Ib <= Ia)
        advanceReady(*Rb);
      return;
    }
    if (Av)
      advanceReady(*La);
    else
      advanceReady(*Rb);
  }

private:
  bool aValid() const { return La && La->valid(); }
  bool bValid() const { return Rb && Rb->valid(); }

  std::optional<A> La;
  std::optional<B> Rb;
};

/// Convenience factory for the two-sided case.
template <Semiring S, AnIndexedStream A, AnIndexedStream B>
AddStream<S, A, B> addStreams(A La, B Rb) {
  return AddStream<S, A, B>(std::optional<A>(std::move(La)),
                            std::optional<B>(std::move(Rb)));
}

//===----------------------------------------------------------------------===//
// Contraction
//===----------------------------------------------------------------------===//

/// Σ at the outermost level (Section 5.1.2): identical to the underlying
/// stream but indexed by the dummy attribute (rendered as index 0), with
/// `skip(*, r) = skip(index(q), r)`.
template <AnIndexedStream A> class ContractStream {
public:
  using ValueType = typename A::ValueType;
  static constexpr bool Contracted = true;

  explicit ContractStream(A Inner) : Inner(std::move(Inner)) {}

  bool valid() const { return Inner.valid(); }
  Idx index() const { return 0; }
  bool ready() const { return Inner.ready(); }
  ValueType value() const { return Inner.value(); }

  void skip(Idx, bool Strict) { Inner.skip(Inner.index(), Strict); }

  /// Fast δ from a ready state.
  void next() { advanceReady(Inner); }

private:
  A Inner;
};

template <AnIndexedStream A> ContractStream<A> contractStream(A Inner) {
  return ContractStream<A>(std::move(Inner));
}

//===----------------------------------------------------------------------===//
// Map
//===----------------------------------------------------------------------===//

/// The functor action `map f` (Section 5.2): composes \p F with the value
/// function, leaving iteration untouched. `map^k (Σ_a)` / `map^k (↑_a)` are
/// spelled as nested MapStreams whose innermost functor applies
/// contractStream / a RepeatStream constructor.
template <AnIndexedStream A, typename F> class MapStream {
public:
  using ValueType = std::invoke_result_t<F, typename A::ValueType>;
  static constexpr bool Contracted = IsContractedV<A>;

  MapStream(A Inner, F Fn) : Inner(std::move(Inner)), Fn(std::move(Fn)) {}

  bool valid() const { return Inner.valid(); }
  Idx index() const { return Inner.index(); }
  bool ready() const { return Inner.ready(); }
  ValueType value() const { return Fn(Inner.value()); }
  void skip(Idx I, bool Strict) { Inner.skip(I, Strict); }

  /// Fast δ from a ready state.
  void next() { advanceReady(Inner); }

private:
  A Inner;
  F Fn;
};

template <AnIndexedStream A, typename F>
MapStream<A, F> mapStream(A Inner, F Fn) {
  return MapStream<A, F>(std::move(Inner), std::move(Fn));
}

/// Like MapStream, but the functor also sees the index: `F(index, value)`.
/// This is how a multiplication against an always-ready random-access
/// ("locate") level lowers — e.g. sparse ⋅ dense folds the dense operand
/// into a lookup, the standard treatment of dense levels that TACO and the
/// Etch compiler both apply. The indexed level must not be contracted.
template <AnIndexedStream A, typename F> class MapIndexedStream {
  static_assert(!IsContractedV<A>, "no index to map at a contracted level");

public:
  using ValueType = std::invoke_result_t<F, Idx, typename A::ValueType>;
  static constexpr bool Contracted = false;

  MapIndexedStream(A Inner, F Fn) : Inner(std::move(Inner)), Fn(std::move(Fn)) {}

  bool valid() const { return Inner.valid(); }
  Idx index() const { return Inner.index(); }
  bool ready() const { return Inner.ready(); }
  ValueType value() const { return Fn(Inner.index(), Inner.value()); }
  void skip(Idx I, bool Strict) { Inner.skip(I, Strict); }

  /// Fast δ from a ready state.
  void next() { advanceReady(Inner); }

private:
  A Inner;
  F Fn;
};

template <AnIndexedStream A, typename F>
MapIndexedStream<A, F> mapIndexed(A Inner, F Fn) {
  return MapIndexedStream<A, F>(std::move(Inner), std::move(Fn));
}

/// Multiplies a stream by a dense (always-ready, random-access) operand:
/// `value(i) * Dense[i]`. The caller guarantees the dense extent covers the
/// stream's index range.
template <Semiring S, AnIndexedStream A>
auto mulDenseLocate(A La, const typename S::Value *Dense) {
  return mapIndexed(std::move(La),
                    [Dense](Idx I, typename S::Value V) {
                      return S::mul(V, Dense[I]);
                    });
}

/// `map Σ`: contracts the level *below* the outermost one.
template <AnIndexedStream A> auto contractInner(A Outer) {
  auto Fn = [](typename A::ValueType Inner) {
    return contractStream(std::move(Inner));
  };
  return mapStream(std::move(Outer), Fn);
}

} // namespace etch

#endif // ETCH_STREAMS_COMBINATORS_H

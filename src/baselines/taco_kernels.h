//===- baselines/taco_kernels.h - Hand-written TACO-style kernels -*-C++-*-=//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TACO comparator of Figure 17, substituted per DESIGN.md: TACO's
/// performance comes from the loop nests it emits, so this library is
/// those loop nests written by hand, one per benchmark expression, in the
/// style of the code TACO generates (coordinate-wise two-pointer merges,
/// dense workspaces for mat-mul, no binary-search skipping — TACO advances
/// iterators one coordinate at a time, which is exactly the contrast the
/// paper's `smul` result exploits).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_BASELINES_TACO_KERNELS_H
#define ETCH_BASELINES_TACO_KERNELS_H

#include "formats/csf.h"
#include "formats/matrices.h"
#include "formats/vectors.h"

namespace etch {
namespace taco {

/// y(i) = Σ_j A(i,j) · x(j), dense x and y (TACO's canonical SpMV).
void spmv(const CsrMatrix<double> &A, const DenseVector<double> &X,
          DenseVector<double> &Y);

/// out = Σ_i x(i) · y(i) · z(i), sparse vectors (the Figure 2 kernel).
double tripleDot(const SparseVector<double> &X, const SparseVector<double> &Y,
                 const SparseVector<double> &Z);

/// C = A + B on CSR (row-wise two-pointer merge).
CsrMatrix<double> matAdd(const CsrMatrix<double> &A,
                         const CsrMatrix<double> &B);

/// out = Σ_{i,j} A(i,j) · B(i,j) (matrix inner product; row-wise
/// two-pointer intersection).
double inner(const CsrMatrix<double> &A, const CsrMatrix<double> &B);

/// C = A · B on CSR via linear combination of rows with a dense workspace
/// (TACO's workspace algorithm from Kjolstad et al. 2019).
CsrMatrix<double> mmul(const CsrMatrix<double> &A, const CsrMatrix<double> &B);

/// C = A ∘ B (elementwise) on DCSR, two-pointer merges at both levels.
DcsrMatrix<double> smul(const DcsrMatrix<double> &A,
                        const DcsrMatrix<double> &B);

/// A(i,j) = Σ_{k,l} B(i,k,l) · C(k,j) · D(l,j): MTTKRP over a CSF tensor
/// with dense factor matrices of R columns, row-major (k*R + j).
void mttkrp(const CsfTensor3<double> &B, const std::vector<double> &C,
            const std::vector<double> &D, int64_t R,
            std::vector<double> &A);

} // namespace taco
} // namespace etch

#endif // ETCH_BASELINES_TACO_KERNELS_H

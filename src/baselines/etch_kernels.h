//===- baselines/etch_kernels.h - Stream-composed (Etch) kernels -*- C++-*-=//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Etch side of Figure 17 and Sections 8.1/8.3: each benchmark
/// expression composed from indexed streams. Because the combinators are
/// templates, composition happens at C++ compile time and the optimiser
/// sees exactly the fused loop nest the Etch compiler would emit as C —
/// these kernels *are* the generated code, driven through the formal
/// model's operators (the compiler path is validated separately against
/// the same oracle).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_BASELINES_ETCH_KERNELS_H
#define ETCH_BASELINES_ETCH_KERNELS_H

#include "formats/csf.h"
#include "formats/matrices.h"
#include "formats/vectors.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "streams/parallel.h"
#include "support/simd.h"

#include <algorithm>

namespace etch {
namespace kernels {

using S = F64Semiring;

/// y(i) = Σ_j A(i,j) · x(j), dense x. The dense operand is a locate level
/// (always ready, O(1) access), so the product folds it into a lookup —
/// the same simplification the Etch compiler's dense format performs.
inline void spmv(const CsrMatrix<double> &A, const DenseVector<double> &X,
                 DenseVector<double> &Y) {
  const double *XP = X.Val.data();
  forEach(A.stream(), [&](Idx I, auto Row) {
    Y.Val[static_cast<size_t>(I)] =
        sumAll<S>(mulDenseLocate<S>(std::move(Row), XP));
  });
}

/// out = Σ_i x(i) · y(i) · z(i) (Figure 2). \p P picks the skip policy.
template <SearchPolicy P = SearchPolicy::Linear>
double tripleDot(const SparseVector<double> &X, const SparseVector<double> &Y,
                 const SparseVector<double> &Z) {
  return sumAll<S>(mulStreams<S>(
      X.stream<P>(), mulStreams<S>(Y.stream<P>(), Z.stream<P>())));
}

/// C = A + B on CSR via the addition combinator.
inline CsrMatrix<double> matAdd(const CsrMatrix<double> &A,
                                const CsrMatrix<double> &B) {
  CsrMatrix<double> C(A.NumRows, A.NumCols);
  auto Sum = addStreams<S>(A.stream(), B.stream());
  forEach(std::move(Sum), [&](Idx I, auto Row) {
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    forEach(std::move(Row), [&](Idx J, double V) {
      C.Crd.push_back(J);
      C.Val.push_back(V);
    });
  });
  // Dense outer level: every row is visited, so only the tail needs
  // closing.
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

/// out = Σ_{i,j} A(i,j) · B(i,j).
inline double inner(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  return sumAll<S>(mulStreams<S>(A.stream(), B.stream()));
}

/// C = A · B via linear combination of rows (Section 5.4.1's e2 ordering)
/// with a dense workspace for row assembly.
inline CsrMatrix<double> mmul(const CsrMatrix<double> &A,
                              const CsrMatrix<double> &B) {
  CsrMatrix<double> C(A.NumRows, B.NumCols);
  std::vector<double> W(static_cast<size_t>(B.NumCols), 0.0);
  std::vector<Idx> Touched;
  // Σ_j A(i,j) · B(j,k): iterate rows of A; the j level pairs A's row with
  // B's row level (a sparse-dense intersection); the k level scales B's
  // row into the workspace.
  forEach(A.stream(), [&](Idx I, auto RowA) {
    Touched.clear();
    auto JLevel = joinStreams(PairBoth{}, std::move(RowA), B.stream());
    forEach(std::move(JLevel), [&](Idx, auto Pair) {
      double VA = Pair.first;
      forEach(std::move(Pair.second), [&](Idx K, double VB) {
        if (W[static_cast<size_t>(K)] == 0.0)
          Touched.push_back(K);
        W[static_cast<size_t>(K)] += VA * VB;
      });
    });
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    std::sort(Touched.begin(), Touched.end());
    for (Idx K : Touched) {
      C.Crd.push_back(K);
      C.Val.push_back(W[static_cast<size_t>(K)]);
      W[static_cast<size_t>(K)] = 0.0;
    }
  });
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

/// C = A · B via the inner-product ordering (Section 5.4.1's e1): BT must
/// be B transposed, stored CSR. Asymptotically O(rows² · k) — the slow
/// ordering of the Section 8.1 experiment.
inline CsrMatrix<double> mmulInnerProduct(const CsrMatrix<double> &A,
                                          const CsrMatrix<double> &BT) {
  CsrMatrix<double> C(A.NumRows, BT.NumRows);
  for (Idx I = 0; I < A.NumRows; ++I) {
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    forEach(BT.stream(), [&](Idx K, auto RowBT) {
      const size_t *Pos = A.Pos.data();
      auto Leaf = [&A](size_t Q) { return A.Val[Q]; };
      SparseStream<decltype(Leaf)> RowA(A.Crd.data(),
                                        Pos[static_cast<size_t>(I)],
                                        Pos[static_cast<size_t>(I) + 1],
                                        Leaf);
      double V = sumAll<S>(mulStreams<S>(RowA, std::move(RowBT)));
      if (V != 0.0) {
        C.Crd.push_back(K);
        C.Val.push_back(V);
      }
    });
  }
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

/// C = A ∘ B on DCSR. \p P picks the column-level skip policy — Binary /
/// Gallop gives the asymptotic advantage over TACO's linear merge when one
/// operand is much denser (the paper's `smul` result).
template <SearchPolicy P = SearchPolicy::Linear>
DcsrMatrix<double> smul(const DcsrMatrix<double> &A,
                        const DcsrMatrix<double> &B) {
  DcsrMatrix<double> C;
  C.NumRows = A.NumRows;
  C.NumCols = A.NumCols;
  C.Pos.push_back(0);
  auto Prod = mulStreams<S>(A.stream<P, P>(), B.stream<P, P>());
  forEach(std::move(Prod), [&](Idx I, auto Row) {
    size_t Before = C.Crd.size();
    forEach(std::move(Row), [&](Idx J, double V) {
      C.Crd.push_back(J);
      C.Val.push_back(V);
    });
    if (C.Crd.size() != Before) {
      C.RowCrd.push_back(I);
      C.Pos.push_back(C.Crd.size());
    }
  });
  return C;
}

/// A(i,j) = Σ_{k,l} B(i,k,l) · C(k,j) · D(l,j): MTTKRP; the j level is a
/// product of two dense factor-row streams scaled by the tensor value.
inline void mttkrp(const CsfTensor3<double> &B, const std::vector<double> &C,
                   const std::vector<double> &D, int64_t R,
                   std::vector<double> &A) {
  A.assign(static_cast<size_t>(B.DimI * R), 0.0);
  forEach(B.stream(), [&](Idx I, auto Fiber) {
    double *ARow = &A[static_cast<size_t>(I * R)];
    forEach(std::move(Fiber), [&](Idx K, auto Row) {
      const double *CRow = &C[static_cast<size_t>(K * R)];
      forEach(std::move(Row), [&](Idx L, double V) {
        const double *DRow = &D[static_cast<size_t>(L * R)];
        // Both factors are dense locate levels; the j level is one dense
        // stream whose value folds both lookups.
        auto JProd = mulDenseLocate<S>(
            mulDenseLocate<S>(
                RepeatStream<double>(R, V), CRow),
            DRow);
        forEach(std::move(JProd),
                [&](Idx J, double CD) { ARow[J] += CD; });
      });
    });
  });
}

/// Fused filtered SpMV (Section 8.3 / Figure 21): y(i) = p(i) · Σ_j
/// A(i,j) · x(j), where \p PassRows holds the row ids satisfying the
/// relational filter. The row-level intersection skips all work for
/// filtered-out rows.
inline void filteredSpmvFused(const CsrMatrix<double> &A,
                              const DenseVector<double> &X,
                              const SparseVector<double> &PassRows,
                              DenseVector<double> &Y) {
  const double *XP = X.Val.data();
  auto Rows = joinStreams(KeepLeft{}, A.stream(),
                          PassRows.stream<SearchPolicy::Gallop>());
  forEach(std::move(Rows), [&](Idx I, auto Row) {
    Y.Val[static_cast<size_t>(I)] =
        sumAll<S>(mulDenseLocate<S>(std::move(Row), XP));
  });
}

//===----------------------------------------------------------------------===//
// Parallel variants (streams/parallel.h): the same fused stream loops, run
// per chunk of the outermost level. Each kernel's per-row work is entirely
// inside one chunk, so results are bit-identical to the serial kernel for
// any chunk list and any thread count.
//===----------------------------------------------------------------------===//

/// Row-parallel SpMV. Rows are partitioned by cumulative nnz (balanced even
/// on skewed matrices); each chunk writes its own rows of Y.
inline void spmvParallel(ThreadPool &Pool, const CsrMatrix<double> &A,
                         const DenseVector<double> &X,
                         DenseVector<double> &Y, size_t Chunks = 0) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  const double *XP = X.Val.data();
  parallelForEach(Pool, A.stream(),
                  partitionByPos(A.Pos.data(), A.NumRows, Chunks),
                  [&Y, XP](Idx I, auto Row) {
                    Y.Val[static_cast<size_t>(I)] =
                        sumAll<S>(mulDenseLocate<S>(std::move(Row), XP));
                  });
}

/// Row-parallel elementwise DCSR multiply: each chunk of A's row range
/// produces a private DCSR fragment; fragments concatenate in chunk order,
/// reproducing the serial output exactly.
template <SearchPolicy P = SearchPolicy::Linear>
DcsrMatrix<double> smulParallel(ThreadPool &Pool,
                                const DcsrMatrix<double> &A,
                                const DcsrMatrix<double> &B,
                                size_t Chunks = 0) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  auto Ranges = partitionSparse(A.stream<P, P>(), Chunks);

  struct Fragment {
    std::vector<Idx> RowCrd, Crd;
    std::vector<double> Val;
    std::vector<size_t> RowLen; // nnz per nonempty row, aligned with RowCrd
  };
  std::vector<Fragment> Frags(Ranges.size());
  Pool.parallelFor(Ranges.size(), [&](size_t C) {
    Fragment &F = Frags[C];
    auto Prod = mulStreams<S>(A.stream<P, P>(), B.stream<P, P>());
    forEach(BoundedStream<decltype(Prod)>(std::move(Prod), Ranges[C].Lo,
                                          Ranges[C].Hi),
            [&F](Idx I, auto Row) {
              size_t Before = F.Crd.size();
              forEach(std::move(Row), [&F](Idx J, double V) {
                F.Crd.push_back(J);
                F.Val.push_back(V);
              });
              if (F.Crd.size() != Before) {
                F.RowCrd.push_back(I);
                F.RowLen.push_back(F.Crd.size() - Before);
              }
            });
  });

  DcsrMatrix<double> Out;
  Out.NumRows = A.NumRows;
  Out.NumCols = A.NumCols;
  Out.Pos.push_back(0);
  for (const Fragment &F : Frags) {
    Out.RowCrd.insert(Out.RowCrd.end(), F.RowCrd.begin(), F.RowCrd.end());
    Out.Crd.insert(Out.Crd.end(), F.Crd.begin(), F.Crd.end());
    Out.Val.insert(Out.Val.end(), F.Val.begin(), F.Val.end());
    for (size_t Len : F.RowLen)
      Out.Pos.push_back(Out.Pos.back() + Len);
  }
  return Out;
}

/// Fiber-parallel MTTKRP: the outer compressed i-level is partitioned by
/// position, so each chunk owns a disjoint set of output rows of A.
inline void mttkrpParallel(ThreadPool &Pool, const CsfTensor3<double> &B,
                           const std::vector<double> &C,
                           const std::vector<double> &D, int64_t R,
                           std::vector<double> &A, size_t Chunks = 0) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  A.assign(static_cast<size_t>(B.DimI * R), 0.0);
  double *AP = A.data();
  const double *CP = C.data();
  const double *DP = D.data();
  parallelForEach(
      Pool, B.stream(), partitionSparse(B.stream(), Chunks),
      [AP, CP, DP, R](Idx I, auto Fiber) {
        double *ARow = AP + static_cast<size_t>(I * R);
        forEach(std::move(Fiber), [&](Idx K, auto Row) {
          const double *CRow = CP + static_cast<size_t>(K * R);
          forEach(std::move(Row), [&](Idx L, double V) {
            const double *DRow = DP + static_cast<size_t>(L * R);
            auto JProd = mulDenseLocate<S>(
                mulDenseLocate<S>(RepeatStream<double>(R, V), CRow), DRow);
            forEach(std::move(JProd),
                    [&](Idx J, double CD) { ARow[J] += CD; });
          });
        });
      });
}

/// Row-parallel fused filtered SpMV: the passing-rows vector (the selective
/// side of the intersection) is partitioned by position, so chunks hold
/// near-equal numbers of surviving rows; each writes its own rows of Y.
inline void filteredSpmvFusedParallel(ThreadPool &Pool,
                                      const CsrMatrix<double> &A,
                                      const DenseVector<double> &X,
                                      const SparseVector<double> &PassRows,
                                      DenseVector<double> &Y,
                                      size_t Chunks = 0) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  const double *XP = X.Val.data();
  auto Rows = joinStreams(KeepLeft{}, A.stream(),
                          PassRows.stream<SearchPolicy::Gallop>());
  parallelForEach(
      Pool, Rows,
      partitionSparse(PassRows.stream<SearchPolicy::Gallop>(), Chunks),
      [&Y, XP](Idx I, auto Row) {
        Y.Val[static_cast<size_t>(I)] =
            sumAll<S>(mulDenseLocate<S>(std::move(Row), XP));
      });
}

//===----------------------------------------------------------------------===//
// Planner-scheduled variants: cache-blocked / SIMD schedules of the same
// fused loops, selected by chooseSchedule (planner/indexing.h) from the
// indexing-map classification rather than hand-picked constants. Every
// variant reproduces its serial original bit for bit: per-output fp
// accumulation order is preserved inside tiles (column blocks ascend, so
// each row still sums its nonzeros in ascending-coordinate order), and
// SIMD applies only to lanes that are independent outputs — never across a
// reduction chain. The PR-2/3 oracle suites and the fuzz matrix gate this.
//===----------------------------------------------------------------------===//

/// Cache-blocked SpMV. `ColTile == 0` (or >= NumCols) runs the plain fused
/// loop; otherwise columns are processed in ascending blocks of ColTile
/// with one cursor per row, so the gathered x slice stays cache-resident.
/// Row i's partial sum resumes from Y[i] exactly where the previous block
/// left it — the addition sequence per row is identical to spmv's.
void spmvTiled(const CsrMatrix<double> &A, const DenseVector<double> &X,
               DenseVector<double> &Y, int64_t ColTile = 0);

/// Row-parallel cache-blocked SpMV: rows are partitioned by cumulative nnz
/// as in spmvParallel; each chunk runs the blocked loop over its own rows,
/// so any chunk/thread configuration reproduces spmvTiled exactly.
void spmvTiledParallel(ThreadPool &Pool, const CsrMatrix<double> &A,
                       const DenseVector<double> &X, DenseVector<double> &Y,
                       int64_t ColTile = 0, size_t Chunks = 0);

/// Raw-loop Frobenius inner product Σ_{i,j} A∘B. The dense row levels of
/// both CSR streams intersect at every i (mul of two dense levels is always
/// ready), so like `inner` the outer accumulator absorbs a row sum for
/// every row — including 0.0 for rows whose column intersection is empty.
double innerTiled(const CsrMatrix<double> &A, const CsrMatrix<double> &B);

/// Cache-blocked CSR matmul, linear-combination ordering. Identical
/// traversal to mmul — per output row, each workspace slot W[k] receives
/// its contributions in ascending j — but with the k range optionally
/// processed in ascending blocks of ColTile (one cursor per entry of A's
/// row), bounding the scattered workspace writes to a cache-resident
/// window when B is wide. Touched bookkeeping (including the duplicate
/// push when a partial sum cancels to exactly 0.0) fires at the same
/// contribution as in mmul, so C matches bit for bit.
CsrMatrix<double> mmulTiled(const CsrMatrix<double> &A,
                            const CsrMatrix<double> &B, int64_t ColTile = 0);

/// MTTKRP with a vectorized dense-value tail. The j loop's lanes are
/// independent outputs — ARow[j] += (V·C[k,j])·D[l,j] touches no other
/// lane — so the SIMD body applies the exact scalar op sequence per lane
/// and the result is bit-identical to mttkrp for any R. The scalar tail
/// loop always compiles and covers the whole range when SIMD is off.
void mttkrpTiled(const CsfTensor3<double> &B, const std::vector<double> &C,
                 const std::vector<double> &D, int64_t R,
                 std::vector<double> &A, bool Simd = true);

/// Fiber-parallel mttkrpTiled: same partitioning as mttkrpParallel (each
/// chunk owns disjoint output rows), same per-row loops as mttkrpTiled.
void mttkrpTiledParallel(ThreadPool &Pool, const CsfTensor3<double> &B,
                         const std::vector<double> &C,
                         const std::vector<double> &D, int64_t R,
                         std::vector<double> &A, bool Simd = true,
                         size_t Chunks = 0);

/// The unfused baseline: materialise the full SpMV, then apply the filter.
inline void filteredSpmvUnfused(const CsrMatrix<double> &A,
                                const DenseVector<double> &X,
                                const SparseVector<double> &PassRows,
                                DenseVector<double> &Y) {
  DenseVector<double> Tmp(A.NumRows);
  kernels::spmv(A, X, Tmp);
  for (size_t P = 0; P < PassRows.nnz(); ++P)
    Y.Val[static_cast<size_t>(PassRows.Crd[P])] =
        Tmp.Val[static_cast<size_t>(PassRows.Crd[P])];
}

} // namespace kernels
} // namespace etch

#endif // ETCH_BASELINES_ETCH_KERNELS_H

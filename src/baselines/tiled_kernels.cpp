//===- baselines/tiled_kernels.cpp - Planner-scheduled kernel variants ----===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Out-of-line definitions of the cache-blocked / SIMD kernel schedules
// declared in etch_kernels.h. They live in one translation unit so the hot
// loops can be function-multi-versioned (ETCH_TARGET_CLONES, support/
// simd.h): each annotated function is compiled for the baseline target and
// for AVX2 and dispatched at load time, widening the F64x4 lanes to real
// 256-bit ops on machines that have them. No FMA target is in the clone
// list, so every clone performs the exact mul/mul/add sequence of the
// scalar originals and the bit-identity contract holds on every machine.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"

#include <algorithm>
#include <vector>

using namespace etch;

namespace {

/// The blocked SpMV loop over rows [Lo, Hi): one cursor per row, columns
/// processed in ascending blocks of ColTile so the gathered x slice stays
/// cache-resident. Row i's partial sum resumes from Y[i] exactly where the
/// previous block left it, so the per-row addition sequence matches the
/// plain loop's.
ETCH_TARGET_CLONES
void spmvBlockedRows(const size_t *Pos, const Idx *Crd, const double *Val,
                     const double *XP, double *YP, size_t Lo, size_t Hi,
                     Idx NumCols, int64_t ColTile) {
  std::vector<size_t> Cur(Pos + Lo, Pos + Hi);
  for (size_t I = Lo; I < Hi; ++I)
    YP[I] = 0.0;
  for (Idx Block = 0; Block < NumCols; Block += static_cast<Idx>(ColTile)) {
    const Idx End = Block + static_cast<Idx>(ColTile); // Crd < NumCols anyway.
    for (size_t I = Lo; I < Hi; ++I) {
      size_t Q = Cur[I - Lo];
      const size_t E = Pos[I + 1];
      if (Q == E || Crd[Q] >= End)
        continue;
      double Acc = YP[I];
      do
        Acc += Val[Q] * XP[Crd[Q]];
      while (++Q < E && Crd[Q] < End);
      Cur[I - Lo] = Q;
      YP[I] = Acc;
    }
  }
}

/// The plain fused SpMV loop over rows [Lo, Hi).
ETCH_TARGET_CLONES
void spmvPlainRows(const size_t *Pos, const Idx *Crd, const double *Val,
                   const double *XP, double *YP, size_t Lo, size_t Hi) {
  for (size_t I = Lo; I < Hi; ++I) {
    double Acc = 0.0;
    for (size_t Q = Pos[I], E = Pos[I + 1]; Q < E; ++Q)
      Acc += Val[Q] * XP[Crd[Q]];
    YP[I] = Acc;
  }
}

/// The MTTKRP row loop over outer fibers [P0Lo, P0Hi) with the vectorized
/// dense-value tail. Lanes are independent outputs, so the SIMD body
/// applies the exact scalar op sequence per lane.
ETCH_TARGET_CLONES
void mttkrpFibers(const CsfTensor3<double> &B, const double *CP,
                  const double *DP, int64_t R, double *AP, bool Simd,
                  size_t P0Lo, size_t P0Hi) {
  for (size_t P0 = P0Lo; P0 < P0Hi; ++P0) {
    double *ARow = AP + static_cast<size_t>(B.Crd0[P0] * R);
    for (size_t P1 = B.Pos0[P0]; P1 < B.Pos0[P0 + 1]; ++P1) {
      const double *CRow = CP + static_cast<size_t>(B.Crd1[P1] * R);
      for (size_t P2 = B.Pos1[P1]; P2 < B.Pos1[P1 + 1]; ++P2) {
        const double *DRow = DP + static_cast<size_t>(B.Crd2[P2] * R);
        const double V = B.Val[P2];
        int64_t J = 0;
#if ETCH_SIMD_F64
        if (Simd) {
          const F64x4 Vv = simdBroadcast(V);
          for (; J + simdWidth() <= R; J += simdWidth())
            simdStore(ARow + J,
                      simdLoad(ARow + J) +
                          Vv * simdLoad(CRow + J) * simdLoad(DRow + J));
        }
#else
        (void)Simd;
#endif
        for (; J < R; ++J)
          ARow[J] += V * CRow[J] * DRow[J];
      }
    }
  }
}

} // namespace

void kernels::spmvTiled(const CsrMatrix<double> &A,
                        const DenseVector<double> &X, DenseVector<double> &Y,
                        int64_t ColTile) {
  const double *XP = X.Val.data();
  const Idx *Crd = A.Crd.data();
  const double *Val = A.Val.data();
  const size_t *Pos = A.Pos.data();
  const size_t N = static_cast<size_t>(A.NumRows);
  if (ColTile <= 0 || ColTile >= A.NumCols)
    spmvPlainRows(Pos, Crd, Val, XP, Y.Val.data(), 0, N);
  else
    spmvBlockedRows(Pos, Crd, Val, XP, Y.Val.data(), 0, N, A.NumCols,
                    ColTile);
}

void kernels::spmvTiledParallel(ThreadPool &Pool, const CsrMatrix<double> &A,
                                const DenseVector<double> &X,
                                DenseVector<double> &Y, int64_t ColTile,
                                size_t Chunks) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  auto Ranges = partitionByPos(A.Pos.data(), A.NumRows, Chunks);
  const double *XP = X.Val.data();
  const Idx *Crd = A.Crd.data();
  const double *Val = A.Val.data();
  const size_t *Pos = A.Pos.data();
  Pool.parallelFor(Ranges.size(), [&](size_t C) {
    const size_t Lo = static_cast<size_t>(Ranges[C].Lo);
    const size_t Hi =
        static_cast<size_t>(std::min<Idx>(Ranges[C].Hi, A.NumRows));
    if (ColTile <= 0 || ColTile >= A.NumCols)
      spmvPlainRows(Pos, Crd, Val, XP, Y.Val.data(), Lo, Hi);
    else
      spmvBlockedRows(Pos, Crd, Val, XP, Y.Val.data(), Lo, Hi, A.NumCols,
                      ColTile);
  });
}

double kernels::innerTiled(const CsrMatrix<double> &A,
                           const CsrMatrix<double> &B) {
  const Idx N = std::min(A.NumRows, B.NumRows);
  double Total = 0.0;
  for (Idx I = 0; I < N; ++I) {
    size_t Qa = A.Pos[static_cast<size_t>(I)];
    const size_t Ea = A.Pos[static_cast<size_t>(I) + 1];
    size_t Qb = B.Pos[static_cast<size_t>(I)];
    const size_t Eb = B.Pos[static_cast<size_t>(I) + 1];
    double Row = 0.0;
    while (Qa < Ea && Qb < Eb) {
      const Idx Ca = A.Crd[Qa], Cb = B.Crd[Qb];
      if (Ca == Cb) {
        Row += A.Val[Qa] * B.Val[Qb];
        ++Qa;
        ++Qb;
      } else if (Ca < Cb) {
        ++Qa;
      } else {
        ++Qb;
      }
    }
    Total += Row;
  }
  return Total;
}

CsrMatrix<double> kernels::mmulTiled(const CsrMatrix<double> &A,
                                     const CsrMatrix<double> &B,
                                     int64_t ColTile) {
  CsrMatrix<double> C(A.NumRows, B.NumCols);
  std::vector<double> W(static_cast<size_t>(B.NumCols), 0.0);
  std::vector<Idx> Touched;
  std::vector<size_t> Cur;
  const bool Blocked = ColTile > 0 && ColTile < B.NumCols;
  for (Idx I = 0; I < A.NumRows; ++I) {
    Touched.clear();
    const size_t RowLo = A.Pos[static_cast<size_t>(I)];
    const size_t RowHi = A.Pos[static_cast<size_t>(I) + 1];
    if (!Blocked) {
      for (size_t Qa = RowLo; Qa < RowHi; ++Qa) {
        const Idx J = A.Crd[Qa];
        const double Va = A.Val[Qa];
        for (size_t Qb = B.Pos[static_cast<size_t>(J)],
                    Eb = B.Pos[static_cast<size_t>(J) + 1];
             Qb < Eb; ++Qb) {
          const Idx K = B.Crd[Qb];
          if (W[static_cast<size_t>(K)] == 0.0)
            Touched.push_back(K);
          W[static_cast<size_t>(K)] += Va * B.Val[Qb];
        }
      }
    } else {
      Cur.resize(RowHi - RowLo);
      for (size_t T = 0; T < Cur.size(); ++T)
        Cur[T] = B.Pos[static_cast<size_t>(A.Crd[RowLo + T])];
      for (Idx Block = 0; Block < B.NumCols;
           Block += static_cast<Idx>(ColTile)) {
        const Idx End = Block + static_cast<Idx>(ColTile);
        for (size_t T = 0; T < Cur.size(); ++T) {
          const Idx J = A.Crd[RowLo + T];
          const double Va = A.Val[RowLo + T];
          size_t Qb = Cur[T];
          const size_t Eb = B.Pos[static_cast<size_t>(J) + 1];
          while (Qb < Eb && B.Crd[Qb] < End) {
            const Idx K = B.Crd[Qb];
            if (W[static_cast<size_t>(K)] == 0.0)
              Touched.push_back(K);
            W[static_cast<size_t>(K)] += Va * B.Val[Qb];
            ++Qb;
          }
          Cur[T] = Qb;
        }
      }
    }
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    std::sort(Touched.begin(), Touched.end());
    for (Idx K : Touched) {
      C.Crd.push_back(K);
      C.Val.push_back(W[static_cast<size_t>(K)]);
      W[static_cast<size_t>(K)] = 0.0;
    }
  }
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

void kernels::mttkrpTiled(const CsfTensor3<double> &B,
                          const std::vector<double> &C,
                          const std::vector<double> &D, int64_t R,
                          std::vector<double> &A, bool Simd) {
  A.assign(static_cast<size_t>(B.DimI * R), 0.0);
  mttkrpFibers(B, C.data(), D.data(), R, A.data(), Simd, 0, B.Crd0.size());
}

void kernels::mttkrpTiledParallel(ThreadPool &Pool,
                                  const CsfTensor3<double> &B,
                                  const std::vector<double> &C,
                                  const std::vector<double> &D, int64_t R,
                                  std::vector<double> &A, bool Simd,
                                  size_t Chunks) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  A.assign(static_cast<size_t>(B.DimI * R), 0.0);
  double *AP = A.data();
  const double *CP = C.data();
  const double *DP = D.data();
  // Partition the outer compressed level by position over its fibers; each
  // chunk owns disjoint output rows.
  const size_t NFib = B.Crd0.size();
  const size_t Per = std::max<size_t>(1, (NFib + Chunks - 1) / Chunks);
  const size_t NChunks = (NFib + Per - 1) / Per;
  Pool.parallelFor(std::max<size_t>(NChunks, 1), [&](size_t Ck) {
    mttkrpFibers(B, CP, DP, R, AP, Simd, Ck * Per,
                 std::min(NFib, (Ck + 1) * Per));
  });
}

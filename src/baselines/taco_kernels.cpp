//===- baselines/taco_kernels.cpp - Hand-written TACO-style kernels ------===//

#include "baselines/taco_kernels.h"

#include "support/assert.h"

#include <algorithm>

using namespace etch;

void taco::spmv(const CsrMatrix<double> &A, const DenseVector<double> &X,
                DenseVector<double> &Y) {
  ETCH_ASSERT(A.NumCols == X.Size && A.NumRows == Y.Size,
              "dimension mismatch");
  for (Idx I = 0; I < A.NumRows; ++I) {
    double Acc = 0.0;
    for (size_t P = A.Pos[static_cast<size_t>(I)];
         P < A.Pos[static_cast<size_t>(I) + 1]; ++P)
      Acc += A.Val[P] * X.Val[static_cast<size_t>(A.Crd[P])];
    Y.Val[static_cast<size_t>(I)] = Acc;
  }
}

double taco::tripleDot(const SparseVector<double> &X,
                       const SparseVector<double> &Y,
                       const SparseVector<double> &Z) {
  // The merged loop of Figure 2, as TACO emits it.
  size_t PX = 0, PY = 0, PZ = 0;
  double Out = 0.0;
  while (PX < X.nnz() && PY < Y.nnz() && PZ < Z.nnz()) {
    Idx IX = X.Crd[PX], IY = Y.Crd[PY], IZ = Z.Crd[PZ];
    Idx I = std::max({IX, IY, IZ});
    if (IX == I && IY == I && IZ == I) {
      Out += X.Val[PX] * Y.Val[PY] * Z.Val[PZ];
      ++PX;
      ++PY;
      ++PZ;
      continue;
    }
    if (IX < I)
      ++PX;
    if (IY < I)
      ++PY;
    if (IZ < I)
      ++PZ;
  }
  return Out;
}

CsrMatrix<double> taco::matAdd(const CsrMatrix<double> &A,
                               const CsrMatrix<double> &B) {
  ETCH_ASSERT(A.NumRows == B.NumRows && A.NumCols == B.NumCols,
              "dimension mismatch");
  CsrMatrix<double> C(A.NumRows, A.NumCols);
  for (Idx I = 0; I < A.NumRows; ++I) {
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    size_t PA = A.Pos[static_cast<size_t>(I)],
           EA = A.Pos[static_cast<size_t>(I) + 1];
    size_t PB = B.Pos[static_cast<size_t>(I)],
           EB = B.Pos[static_cast<size_t>(I) + 1];
    while (PA < EA && PB < EB) {
      Idx JA = A.Crd[PA], JB = B.Crd[PB];
      if (JA == JB) {
        C.Crd.push_back(JA);
        C.Val.push_back(A.Val[PA++] + B.Val[PB++]);
      } else if (JA < JB) {
        C.Crd.push_back(JA);
        C.Val.push_back(A.Val[PA++]);
      } else {
        C.Crd.push_back(JB);
        C.Val.push_back(B.Val[PB++]);
      }
    }
    for (; PA < EA; ++PA) {
      C.Crd.push_back(A.Crd[PA]);
      C.Val.push_back(A.Val[PA]);
    }
    for (; PB < EB; ++PB) {
      C.Crd.push_back(B.Crd[PB]);
      C.Val.push_back(B.Val[PB]);
    }
  }
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

double taco::inner(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  ETCH_ASSERT(A.NumRows == B.NumRows && A.NumCols == B.NumCols,
              "dimension mismatch");
  double Out = 0.0;
  for (Idx I = 0; I < A.NumRows; ++I) {
    size_t PA = A.Pos[static_cast<size_t>(I)],
           EA = A.Pos[static_cast<size_t>(I) + 1];
    size_t PB = B.Pos[static_cast<size_t>(I)],
           EB = B.Pos[static_cast<size_t>(I) + 1];
    while (PA < EA && PB < EB) {
      Idx JA = A.Crd[PA], JB = B.Crd[PB];
      if (JA == JB)
        Out += A.Val[PA++] * B.Val[PB++];
      else if (JA < JB)
        ++PA;
      else
        ++PB;
    }
  }
  return Out;
}

CsrMatrix<double> taco::mmul(const CsrMatrix<double> &A,
                             const CsrMatrix<double> &B) {
  ETCH_ASSERT(A.NumCols == B.NumRows, "dimension mismatch");
  CsrMatrix<double> C(A.NumRows, B.NumCols);
  // Dense workspace + touched-coordinate list (TACO's workspace lowering).
  std::vector<double> W(static_cast<size_t>(B.NumCols), 0.0);
  std::vector<Idx> Touched;
  for (Idx I = 0; I < A.NumRows; ++I) {
    C.Pos[static_cast<size_t>(I)] = C.Crd.size();
    Touched.clear();
    for (size_t PA = A.Pos[static_cast<size_t>(I)];
         PA < A.Pos[static_cast<size_t>(I) + 1]; ++PA) {
      Idx J = A.Crd[PA];
      double VA = A.Val[PA];
      for (size_t PB = B.Pos[static_cast<size_t>(J)];
           PB < B.Pos[static_cast<size_t>(J) + 1]; ++PB) {
        Idx K = B.Crd[PB];
        if (W[static_cast<size_t>(K)] == 0.0)
          Touched.push_back(K);
        W[static_cast<size_t>(K)] += VA * B.Val[PB];
      }
    }
    std::sort(Touched.begin(), Touched.end());
    for (Idx K : Touched) {
      C.Crd.push_back(K);
      C.Val.push_back(W[static_cast<size_t>(K)]);
      W[static_cast<size_t>(K)] = 0.0;
    }
  }
  C.Pos[static_cast<size_t>(A.NumRows)] = C.Crd.size();
  return C;
}

DcsrMatrix<double> taco::smul(const DcsrMatrix<double> &A,
                              const DcsrMatrix<double> &B) {
  ETCH_ASSERT(A.NumRows == B.NumRows && A.NumCols == B.NumCols,
              "dimension mismatch");
  DcsrMatrix<double> C;
  C.NumRows = A.NumRows;
  C.NumCols = A.NumCols;
  C.Pos.push_back(0);
  size_t RA = 0, RB = 0;
  while (RA < A.RowCrd.size() && RB < B.RowCrd.size()) {
    Idx IA = A.RowCrd[RA], IB = B.RowCrd[RB];
    if (IA < IB) {
      ++RA;
      continue;
    }
    if (IB < IA) {
      ++RB;
      continue;
    }
    size_t Before = C.Crd.size();
    size_t PA = A.Pos[RA], EA = A.Pos[RA + 1];
    size_t PB = B.Pos[RB], EB = B.Pos[RB + 1];
    while (PA < EA && PB < EB) {
      Idx JA = A.Crd[PA], JB = B.Crd[PB];
      if (JA == JB) {
        C.Crd.push_back(JA);
        C.Val.push_back(A.Val[PA++] * B.Val[PB++]);
      } else if (JA < JB) {
        ++PA;
      } else {
        ++PB;
      }
    }
    if (C.Crd.size() != Before) {
      C.RowCrd.push_back(IA);
      C.Pos.push_back(C.Crd.size());
    }
    ++RA;
    ++RB;
  }
  return C;
}

void taco::mttkrp(const CsfTensor3<double> &B, const std::vector<double> &C,
                  const std::vector<double> &D, int64_t R,
                  std::vector<double> &A) {
  ETCH_ASSERT(static_cast<int64_t>(C.size()) == B.DimJ * R,
              "C factor dimension mismatch");
  ETCH_ASSERT(static_cast<int64_t>(D.size()) == B.DimK * R,
              "D factor dimension mismatch");
  A.assign(static_cast<size_t>(B.DimI * R), 0.0);
  // The canonical TACO MTTKRP loop nest (i, k, l, j) on CSF.
  for (size_t QI = 0; QI < B.Crd0.size(); ++QI) {
    Idx I = B.Crd0[QI];
    for (size_t QJ = B.Pos0[QI]; QJ < B.Pos0[QI + 1]; ++QJ) {
      Idx K = B.Crd1[QJ];
      for (size_t QK = B.Pos1[QJ]; QK < B.Pos1[QJ + 1]; ++QK) {
        Idx L = B.Crd2[QK];
        double V = B.Val[QK];
        const double *CRow = &C[static_cast<size_t>(K * R)];
        const double *DRow = &D[static_cast<size_t>(L * R)];
        double *ARow = &A[static_cast<size_t>(I * R)];
        for (int64_t J = 0; J < R; ++J)
          ARow[J] += V * CRow[J] * DRow[J];
      }
    }
  }
}

//===- relational/prepared.h - Pre-built query structures ------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definitions of the opaque Prepared structs from queries.h: the physical
/// structures each engine gets to build before the timed region, per the
/// paper's methodology (data loaded, indexes with Etch's column ordering
/// pre-created). Internal to the relational library and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_PREPARED_H
#define ETCH_RELATIONAL_PREPARED_H

#include "relational/engines.h"
#include "relational/queries.h"
#include "relational/trie.h"

namespace etch {

struct Q5Prepared {
  // Fused side, [custkey, orderkey, suppkey] column order. The tries hold
  // *base* relations only — the date window, region filter, and nation
  // equality evaluate fused, inside the query loops, as functional lookups
  // / boolean predicates (Etch's user-defined operators). orderkey and
  // custkey are dense integers, so the dense-pointer layout of Example 2.2
  // applies to lineitem's order level.
  Trie<2, double> Ord; // (custkey, orderkey), all orders
  // lineitem (orderkey, suppkey) -> revenue, dense order level:
  // LiPos[o]..LiPos[o+1) of (LiS, LiRev).
  std::vector<size_t> LiPos;
  std::vector<Idx> LiS;
  std::vector<double> LiRev;
  // Row-store side: B-tree-like indexes.
  SortedIndex LiByOrder;
  SortedIndex SuppByKey;
};

/// Lineitem leaf payload for Q9: partial revenue and quantity sums.
struct Q9LiAgg {
  double Rev = 0.0;
  double Qty = 0.0;
};

struct Q9Prepared {
  // Fused side: [partkey, suppkey, orderkey] column order, so the very
  // selective green(p) predicate — evaluated fused as a boolean-valued
  // stream, exactly the paper's Q9 encoding of substring matching — prunes
  // whole (s, o) subtrees at the outermost level, and each trie is
  // traversed exactly once (the GenericJoin ordering).
  Trie<3, Q9LiAgg> Line; // (partkey, suppkey, orderkey)
  Trie<2, double> Ps; // (partkey, suppkey) -> supplycost
  // Row-store side.
  SortedIndex PartByKey;
  SortedIndex PsByKey;
  SortedIndex SuppByKey;
};

struct TrianglePrepared {
  // Fused side: tries in [a, b] / [b, c] / [a, c] order.
  Trie<2, int64_t> R, S, T;
  // Row-store side.
  SortedIndex SByB;
  SortedIndex TByCA;
  Idx MaxA; ///< Composite-key stride for T's (c, a) index.
};

} // namespace etch

#endif // ETCH_RELATIONAL_PREPARED_H

//===- relational/joinplan.h - Planner-chosen join orders ------*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge from the relational engines to the contraction planner
/// (planner/plan.h): instead of the hand-fixed a < b < c column order of
/// queries_triangle.cpp, `planTriangleJoin` stats the three edge lists,
/// poses the triangle count as a PlanQuery, and lets the cost model pick
/// the GenericJoin variable order. `triangleFusedOrdered` can execute the
/// fused count under any of the six orders (the trie orientations and
/// stream lifts are derived from the order), so the planner's choice is
/// directly runnable — and testable against the reference engine.
///
/// Transposes cost nothing here: the tries are built per query in whatever
/// orientation the order needs, exactly like the hand-written prepare.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_JOINPLAN_H
#define ETCH_RELATIONAL_JOINPLAN_H

#include "planner/plan.h"
#include "relational/queries.h"

#include <array>

namespace etch {

/// A planner-chosen variable order for the triangle join. `VarOrder[p]` is
/// the variable iterated at loop depth p, with 0 = a, 1 = b, 2 = c.
struct TriangleJoinPlan {
  std::array<int, 3> VarOrder{0, 1, 2};
  double Cost = 0.0;   ///< The cost model's estimate for this order.
  std::string Explain; ///< The planner's full EXPLAIN report.
};

/// Asks the contraction planner for the cheapest GenericJoin variable
/// order for count = Σ_{a,b,c} R(a,b) · S(b,c) · T(c,a), using statistics
/// computed from the actual edge lists.
TriangleJoinPlan planTriangleJoin(const EdgeList &Rab, const EdgeList &Sbc,
                                  const EdgeList &Tca);

/// The fused triangle count under an explicit variable order: builds the
/// three tries in the orientation the order demands and runs the fused
/// three-way intersection. Agrees with triangleReference for all 6 orders.
int64_t triangleFusedOrdered(const EdgeList &Rab, const EdgeList &Sbc,
                             const EdgeList &Tca,
                             const std::array<int, 3> &VarOrder);

/// Plan, then execute under the chosen order. The plan (order, cost,
/// EXPLAIN) is returned through \p PlanOut when non-null.
int64_t triangleFusedPlanned(const EdgeList &Rab, const EdgeList &Sbc,
                             const EdgeList &Tca,
                             TriangleJoinPlan *PlanOut = nullptr);

} // namespace etch

#endif // ETCH_RELATIONAL_JOINPLAN_H

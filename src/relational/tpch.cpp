//===- relational/tpch.cpp - A deterministic scaled-down TPC-H dbgen -----===//

#include "relational/tpch.h"

#include "support/assert.h"

using namespace etch;

size_t TpchDb::totalRows() const {
  return RegionName.size() + NationRegion.size() + SuppNation.size() +
         CustNation.size() + PartGreen.size() + PsPart.size() +
         OrdCust.size() + LiOrder.size();
}

TpchDb etch::generateTpch(double ScaleFactor, uint64_t Seed) {
  ETCH_ASSERT(ScaleFactor > 0, "scale factor must be positive");
  Rng R(Seed);
  TpchDb Db;

  auto Scaled = [&](double Base) {
    auto N = static_cast<size_t>(Base * ScaleFactor);
    return N < 1 ? size_t(1) : N;
  };

  // region / nation: fixed small dimension tables (5 regions, 25 nations,
  // 5 per region — the official layout).
  Db.RegionName = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
  static const char *const Nations[25] = {
      "ALGERIA", "ETHIOPIA", "KENYA",   "MOROCCO",   "MOZAMBIQUE",
      "ARGENTINA", "BRAZIL",  "CANADA", "PERU",      "UNITED STATES",
      "CHINA",   "INDIA",     "INDONESIA", "JAPAN",  "VIETNAM",
      "FRANCE",  "GERMANY",   "ROMANIA", "RUSSIA",   "UNITED KINGDOM",
      "EGYPT",   "IRAN",      "IRAQ",   "JORDAN",    "SAUDI ARABIA"};
  for (int N = 0; N < 25; ++N) {
    Db.NationRegion.push_back(N / 5);
    Db.NationName.push_back(Nations[N]);
  }

  const size_t NumSupp = Scaled(10'000);
  const size_t NumCust = Scaled(150'000);
  const size_t NumPart = Scaled(200'000);
  const size_t NumOrders = Scaled(1'500'000);
  const Idx DateRange = 7 * 365;

  Db.SuppNation.reserve(NumSupp);
  for (size_t I = 0; I < NumSupp; ++I)
    Db.SuppNation.push_back(static_cast<Idx>(R.nextBelow(25)));

  Db.CustNation.reserve(NumCust);
  for (size_t I = 0; I < NumCust; ++I)
    Db.CustNation.push_back(static_cast<Idx>(R.nextBelow(25)));

  // p_name contains one of 92 colour words in 5 slots; P(green) ~ 5.4%.
  Db.PartGreen.reserve(NumPart);
  for (size_t I = 0; I < NumPart; ++I)
    Db.PartGreen.push_back(R.nextBool(0.054) ? 1 : 0);

  // partsupp: each part is stocked by 4 distinct suppliers (the official
  // s = (p + k*(S/4)) % S pattern keeps them distinct and uniform).
  Db.PsPart.reserve(NumPart * 4);
  Db.PsSupp.reserve(NumPart * 4);
  Db.PsSupplyCost.reserve(NumPart * 4);
  for (size_t P = 0; P < NumPart; ++P) {
    for (int K = 0; K < 4; ++K) {
      size_t S = (P + static_cast<size_t>(K) * (NumSupp / 4 + 1)) % NumSupp;
      Db.PsPart.push_back(static_cast<Idx>(P));
      Db.PsSupp.push_back(static_cast<Idx>(S));
      Db.PsSupplyCost.push_back(1.0 + R.nextDouble() * 999.0);
    }
  }

  Db.OrdCust.reserve(NumOrders);
  Db.OrdDate.reserve(NumOrders);
  for (size_t I = 0; I < NumOrders; ++I) {
    Db.OrdCust.push_back(static_cast<Idx>(R.nextBelow(NumCust)));
    Db.OrdDate.push_back(static_cast<Idx>(R.nextBelow(
        static_cast<uint64_t>(DateRange))));
  }

  // lineitem: 1..7 lines per order (average 4 -> ~6M at SF 1). Each line
  // picks a (part, supplier) pair from partsupp so the Q9 joins all hit.
  for (size_t O = 0; O < NumOrders; ++O) {
    int Lines = 1 + static_cast<int>(R.nextBelow(7));
    for (int L = 0; L < Lines; ++L) {
      size_t Ps = R.nextBelow(Db.PsPart.size());
      Db.LiOrder.push_back(static_cast<Idx>(O));
      Db.LiPart.push_back(Db.PsPart[Ps]);
      Db.LiSupp.push_back(Db.PsSupp[Ps]);
      Db.LiQuantity.push_back(1.0 + static_cast<double>(R.nextBelow(50)));
      Db.LiExtendedPrice.push_back(900.0 + R.nextDouble() * 104000.0);
      Db.LiDiscount.push_back(static_cast<double>(R.nextBelow(11)) / 100.0);
    }
  }
  return Db;
}

//===- relational/engines.cpp - Pairwise baseline query engines ----------===//

#include "relational/engines.h"

#include "support/assert.h"

#include <algorithm>
#include <bit>

using namespace etch;

//===----------------------------------------------------------------------===//
// HashIndex
//===----------------------------------------------------------------------===//

HashIndex::HashIndex(std::span<const Idx> Keys) : Keys(Keys) {
  size_t Buckets = std::bit_ceil(std::max<size_t>(Keys.size() * 2, 16));
  Shift = 64 - std::countr_zero(Buckets);
  Heads.assign(Buckets, -1);
  Next.assign(Keys.size(), -1);
  for (size_t I = 0; I < Keys.size(); ++I) {
    size_t B = bucketOf(Keys[I]);
    Next[I] = Heads[B];
    Heads[B] = static_cast<int32_t>(I);
  }
}

void HashIndex::probe(Idx Key, std::vector<RowId> &Out) const {
  for (int32_t I = Heads[bucketOf(Key)]; I >= 0; I = Next[static_cast<size_t>(I)])
    if (Keys[static_cast<size_t>(I)] == Key)
      Out.push_back(static_cast<RowId>(I));
}

int64_t HashIndex::probeOne(Idx Key) const {
  for (int32_t I = Heads[bucketOf(Key)]; I >= 0; I = Next[static_cast<size_t>(I)])
    if (Keys[static_cast<size_t>(I)] == Key)
      return I;
  return -1;
}

//===----------------------------------------------------------------------===//
// hashJoin / gather
//===----------------------------------------------------------------------===//

JoinPairs etch::hashJoin(std::span<const Idx> BuildKeys,
                         std::span<const Idx> ProbeKeys,
                         std::span<const RowId> ProbeSel) {
  HashIndex H(BuildKeys);
  JoinPairs Out;
  std::vector<RowId> Matches;
  auto probeRow = [&](RowId P) {
    Matches.clear();
    H.probe(ProbeKeys[P], Matches);
    for (RowId B : Matches) {
      Out.Left.push_back(B);
      Out.Right.push_back(P);
    }
  };
  if (ProbeSel.empty()) {
    for (size_t P = 0; P < ProbeKeys.size(); ++P)
      probeRow(static_cast<RowId>(P));
  } else {
    for (RowId P : ProbeSel)
      probeRow(P);
  }
  return Out;
}

std::vector<Idx> etch::gather(std::span<const Idx> Column,
                              std::span<const RowId> Sel) {
  std::vector<Idx> Out;
  Out.reserve(Sel.size());
  for (RowId R : Sel)
    Out.push_back(Column[R]);
  return Out;
}

std::vector<double> etch::gather(std::span<const double> Column,
                                 std::span<const RowId> Sel) {
  std::vector<double> Out;
  Out.reserve(Sel.size());
  for (RowId R : Sel)
    Out.push_back(Column[R]);
  return Out;
}

//===----------------------------------------------------------------------===//
// SortedIndex
//===----------------------------------------------------------------------===//

SortedIndex::SortedIndex(std::span<const Idx> Keys) {
  Entries.reserve(Keys.size());
  for (size_t I = 0; I < Keys.size(); ++I)
    Entries.emplace_back(Keys[I], static_cast<RowId>(I));
  std::sort(Entries.begin(), Entries.end());
}

size_t SortedIndex::lowerBound(Idx Key) const {
  return static_cast<size_t>(
      std::lower_bound(Entries.begin(), Entries.end(),
                       std::make_pair(Key, RowId(0))) -
      Entries.begin());
}

//===- relational/queries_triangle.cpp - The triangle query --------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// count = Σ_{a,b,c} R(a,b) · S(b,c) · T(c,a)  (Figure 20; Ngo et al.'s
// motivating query). Column order a < b < c; T is re-indexed as (a, c).
// The fused indexed-stream evaluation is the GenericJoin loop structure
// (Section 5.4.2) and meets the worst-case-optimal bound; both pairwise
// baselines must materialise the Θ(n²) intermediate R ⋈ S (columnar) or
// probe Θ(n²) tuples (row store) on the worst-case family.
//
//===----------------------------------------------------------------------===//

#include "relational/prepared.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "streams/parallel.h"

#include <algorithm>
#include <unordered_set>

using namespace etch;

EdgeList etch::triangleWorstCase(Idx N) {
  EdgeList G;
  G.Edges.reserve(static_cast<size_t>(2 * N));
  for (Idx I = 0; I < N; ++I) {
    G.Edges.push_back({0, I});
    if (I != 0)
      G.Edges.push_back({I, 0});
  }
  return G;
}

EdgeList etch::randomEdges(Rng &R, Idx N, size_t E) {
  EdgeList G;
  G.Edges.reserve(E);
  for (uint64_t C :
       R.sampleDistinctSorted(E, static_cast<uint64_t>(N) * N))
    G.Edges.push_back({static_cast<Idx>(C / N), static_cast<Idx>(C % N)});
  return G;
}

namespace {

Trie<2, int64_t> trieOf(const EdgeList &G, bool Swap) {
  std::vector<std::array<Idx, 2>> Keys;
  Keys.reserve(G.Edges.size());
  for (auto [U, V] : G.Edges)
    Keys.push_back(Swap ? std::array<Idx, 2>{V, U}
                        : std::array<Idx, 2>{U, V});
  return Trie<2, int64_t>::fromKeys(std::move(Keys), 1);
}

} // namespace

std::unique_ptr<TrianglePrepared>
etch::trianglePrepare(const EdgeList &Rab, const EdgeList &Sbc,
                      const EdgeList &Tca) {
  std::vector<Idx> Sb(Sbc.Edges.size());
  for (size_t I = 0; I < Sbc.Edges.size(); ++I)
    Sb[I] = Sbc.Edges[I].first;

  Idx MaxA = 1;
  for (auto [C, A] : Tca.Edges) {
    (void)C;
    MaxA = std::max(MaxA, A + 1);
  }
  for (auto [A, B] : Rab.Edges) {
    (void)B;
    MaxA = std::max(MaxA, A + 1);
  }
  std::vector<Idx> TKey(Tca.Edges.size());
  for (size_t I = 0; I < Tca.Edges.size(); ++I)
    TKey[I] = Tca.Edges[I].first * MaxA + Tca.Edges[I].second;

  return std::unique_ptr<TrianglePrepared>(new TrianglePrepared{
      trieOf(Rab, false), // (a, b)
      trieOf(Sbc, false), // (b, c)
      trieOf(Tca, true),  // (c, a) re-indexed as (a, c)
      SortedIndex(Sb), SortedIndex(TKey), MaxA});
}

int64_t etch::triangleFused(const TrianglePrepared &P) {
  // Lift to [a, b, c] and take the three-way product.
  auto R3 = mapStream(P.R.stream(), [](auto BLev) {
    return mapStream(std::move(BLev),
                     [](int64_t V) { return repeatUnbounded(V); });
  });
  auto S3 = repeatUnbounded(P.S.stream());
  auto T3 = mapStream(P.T.stream(), [](auto CLev) {
    return repeatUnbounded(std::move(CLev));
  });

  using K = I64Semiring;
  return sumAll<K>(mulStreams<K>(R3, mulStreams<K>(S3, T3)));
}

int64_t etch::triangleFusedParallel(ThreadPool &Pool,
                                    const TrianglePrepared &P,
                                    size_t Chunks) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  // Same plan as triangleFused; only the outermost a level (R's top trie
  // level, a compressed level) is partitioned, and only R3 needs bounding —
  // the three-way product intersects S3/T3 down to each chunk's a range.
  auto R3 = mapStream(P.R.stream(), [](auto BLev) {
    return mapStream(std::move(BLev),
                     [](int64_t V) { return repeatUnbounded(V); });
  });
  auto S3 = repeatUnbounded(P.S.stream());
  auto T3 = mapStream(P.T.stream(), [](auto CLev) {
    return repeatUnbounded(std::move(CLev));
  });

  using K = I64Semiring;
  auto Q = mulStreams<K>(std::move(R3), mulStreams<K>(std::move(S3),
                                                      std::move(T3)));
  return parallelSumAll<K>(Pool, Q,
                           partitionSparse(P.R.stream(), Chunks));
}

namespace {

/// First position in [Lo, Hi) whose coordinate reaches \p Target:
/// exponential search from Lo then binary over the bracketed range — the
/// same skip the trie streams' Gallop policy performs, so the raw-merge
/// triangle keeps the worst-case-optimal bound.
size_t gallopTo(const Idx *Crd, size_t Lo, size_t Hi, Idx Target) {
  if (Lo >= Hi || Crd[Lo] >= Target)
    return Lo;
  size_t Step = 1, Prev = Lo;
  while (Lo + Step < Hi && Crd[Lo + Step] < Target) {
    Prev = Lo + Step;
    Step <<= 1;
  }
  size_t A = Prev + 1, B = std::min(Hi, Lo + Step + 1);
  while (A < B) {
    size_t M = A + (B - A) / 2;
    if (Crd[M] < Target)
      A = M + 1;
    else
      B = M;
  }
  return A;
}

/// The GenericJoin loop nest over one contiguous range [PaLo, PaHi) of R's
/// top (a) level, as raw galloping merges over the trie arrays.
int64_t triangleRangeRaw(const TrianglePrepared &P, size_t PaLo,
                         size_t PaHi) {
  const Idx *RA = P.R.Crd[0].data();
  const size_t *RPos = P.R.Pos[0].data();
  const Idx *RB = P.R.Crd[1].data();
  const int64_t *RV = P.R.Val.data();
  const Idx *SB = P.S.Crd[0].data();
  const size_t *SPos = P.S.Pos[0].data();
  const Idx *SC = P.S.Crd[1].data();
  const int64_t *SV = P.S.Val.data();
  const Idx *TA = P.T.Crd[0].data();
  const size_t *TPos = P.T.Pos[0].data();
  const Idx *TC = P.T.Crd[1].data();
  const int64_t *TV = P.T.Val.data();
  const size_t Es = P.S.Crd[0].size();
  const size_t Et = P.T.Crd[0].size();

  int64_t Count = 0;
  size_t Pa = PaLo, Pt = 0;
  while (Pa < PaHi && Pt < Et) {
    const Idx Aa = RA[Pa], At = TA[Pt];
    if (Aa < At) {
      Pa = gallopTo(RA, Pa, PaHi, At);
    } else if (At < Aa) {
      Pt = gallopTo(TA, Pt, Et, Aa);
    } else {
      size_t Pb = RPos[Pa];
      const size_t Eb = RPos[Pa + 1];
      size_t Ps = 0;
      while (Pb < Eb && Ps < Es) {
        const Idx Bb = RB[Pb], Bs = SB[Ps];
        if (Bb < Bs) {
          Pb = gallopTo(RB, Pb, Eb, Bs);
        } else if (Bs < Bb) {
          Ps = gallopTo(SB, Ps, Es, Bb);
        } else {
          size_t Pc = SPos[Ps];
          const size_t Ec = SPos[Ps + 1];
          size_t Pu = TPos[Pt];
          const size_t Eu = TPos[Pt + 1];
          while (Pc < Ec && Pu < Eu) {
            const Idx Cs = SC[Pc], Ct = TC[Pu];
            if (Cs < Ct) {
              Pc = gallopTo(SC, Pc, Ec, Ct);
            } else if (Ct < Cs) {
              Pu = gallopTo(TC, Pu, Eu, Cs);
            } else {
              Count += RV[Pb] * (SV[Pc] * TV[Pu]);
              ++Pc;
              ++Pu;
            }
          }
          ++Pb;
          ++Ps;
        }
      }
      ++Pa;
      ++Pt;
    }
  }
  return Count;
}

} // namespace

int64_t etch::triangleFusedTiled(const TrianglePrepared &P) {
  return triangleRangeRaw(P, 0, P.R.Crd[0].size());
}

int64_t etch::triangleFusedTiledParallel(ThreadPool &Pool,
                                         const TrianglePrepared &P,
                                         size_t Chunks) {
  if (Chunks == 0)
    Chunks = Pool.threadCount() * 4;
  const size_t N = P.R.Crd[0].size();
  const size_t Per = std::max<size_t>(1, (N + Chunks - 1) / Chunks);
  const size_t NChunks = N == 0 ? 1 : (N + Per - 1) / Per;
  std::vector<int64_t> Partial(NChunks, 0);
  Pool.parallelFor(NChunks, [&](size_t C) {
    Partial[C] = triangleRangeRaw(P, C * Per, std::min(N, (C + 1) * Per));
  });
  int64_t Count = 0;
  for (int64_t V : Partial)
    Count += V;
  return Count;
}

int64_t etch::triangleFused(const EdgeList &Rab, const EdgeList &Sbc,
                            const EdgeList &Tca) {
  return triangleFused(*trianglePrepare(Rab, Sbc, Tca));
}

int64_t etch::triangleColumnar(const EdgeList &Rab, const EdgeList &Sbc,
                               const EdgeList &Tca) {
  // Pairwise plan: materialise R ⋈ S on b, then hash-join the (a, c)
  // pairs against T. The intermediate is Θ(n²) on the worst-case family.
  std::vector<Idx> Rb(Rab.Edges.size()), Ra(Rab.Edges.size());
  for (size_t I = 0; I < Rab.Edges.size(); ++I) {
    Ra[I] = Rab.Edges[I].first;
    Rb[I] = Rab.Edges[I].second;
  }
  std::vector<Idx> Sb(Sbc.Edges.size()), Sc(Sbc.Edges.size());
  for (size_t I = 0; I < Sbc.Edges.size(); ++I) {
    Sb[I] = Sbc.Edges[I].first;
    Sc[I] = Sbc.Edges[I].second;
  }
  JoinPairs RS = hashJoin(Rb, Sb);

  // Materialise the intermediate's (a, c) columns.
  std::vector<Idx> Ia(RS.size()), Ic(RS.size());
  for (size_t I = 0; I < RS.size(); ++I) {
    Ia[I] = Ra[RS.Left[I]];
    Ic[I] = Sc[RS.Right[I]];
  }

  // Probe T with the composite key (c, a).
  Idx MaxA = 1;
  for (auto [C, A] : Tca.Edges)
    MaxA = std::max(MaxA, A + 1);
  for (Idx A : Ia)
    MaxA = std::max(MaxA, A + 1);
  std::vector<Idx> TKey(Tca.Edges.size());
  for (size_t I = 0; I < Tca.Edges.size(); ++I)
    TKey[I] = Tca.Edges[I].first * MaxA + Tca.Edges[I].second;
  HashIndex TIdx(TKey);
  int64_t Count = 0;
  std::vector<RowId> Matches;
  for (size_t I = 0; I < Ia.size(); ++I) {
    Matches.clear();
    TIdx.probe(Ic[I] * MaxA + Ia[I], Matches);
    Count += static_cast<int64_t>(Matches.size());
  }
  return Count;
}

int64_t etch::triangleRowStore(const EdgeList &Rab, const EdgeList &Sbc,
                               const EdgeList &Tca,
                               const TrianglePrepared &P) {
  // Tuple-at-a-time: for each (a,b) in R, scan S's b-index, then probe
  // T's (c,a) index. Probes Θ(n²) tuples on the worst-case family.
  int64_t Count = 0;
  for (auto [A, B] : Rab.Edges) {
    P.SByB.scanEqual(B, [&, A = A](RowId SRow) {
      Idx C = Sbc.Edges[SRow].second;
      P.TByCA.scanEqual(C * P.MaxA + A, [&](RowId) { ++Count; });
    });
  }
  return Count;
}

int64_t etch::triangleRowStore(const EdgeList &Rab, const EdgeList &Sbc,
                               const EdgeList &Tca) {
  return triangleRowStore(Rab, Sbc, Tca, *trianglePrepare(Rab, Sbc, Tca));
}

int64_t etch::triangleReference(const EdgeList &Rab, const EdgeList &Sbc,
                                const EdgeList &Tca) {
  // Hash-set membership, loop over R x S adjacency — simple and obviously
  // correct for tests.
  std::unordered_set<uint64_t> T;
  Idx MaxV = 1;
  for (auto [C, A] : Tca.Edges)
    MaxV = std::max({MaxV, C + 1, A + 1});
  for (auto [C, A] : Tca.Edges)
    T.insert(static_cast<uint64_t>(C) * static_cast<uint64_t>(MaxV) +
             static_cast<uint64_t>(A));

  std::vector<std::vector<Idx>> SAdj;
  for (auto [B, C] : Sbc.Edges) {
    if (static_cast<size_t>(B) >= SAdj.size())
      SAdj.resize(static_cast<size_t>(B) + 1);
    SAdj[static_cast<size_t>(B)].push_back(C);
  }

  int64_t Count = 0;
  for (auto [A, B] : Rab.Edges) {
    if (static_cast<size_t>(B) >= SAdj.size() || A >= MaxV)
      continue;
    for (Idx C : SAdj[static_cast<size_t>(B)])
      if (C < MaxV &&
          T.count(static_cast<uint64_t>(C) * static_cast<uint64_t>(MaxV) +
                  static_cast<uint64_t>(A)))
        ++Count;
  }
  return Count;
}

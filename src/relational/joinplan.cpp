//===- relational/joinplan.cpp - Planner-chosen join orders ---------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//

#include "relational/joinplan.h"

#include "relational/trie.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "support/assert.h"

#include <algorithm>

using namespace etch;

namespace {

/// The three join variables as planner attributes, interned once in the
/// canonical a < b < c order.
const std::array<Attr, 3> &joinVars() {
  static const std::array<Attr, 3> Vars = {
      Attr::named("tj_a"), Attr::named("tj_b"), Attr::named("tj_c")};
  return Vars;
}

Trie<2, int64_t> trieOf(const EdgeList &G, bool Swap) {
  std::vector<std::array<Idx, 2>> Keys;
  Keys.reserve(G.Edges.size());
  for (auto [U, V] : G.Edges)
    Keys.push_back(Swap ? std::array<Idx, 2>{V, U}
                        : std::array<Idx, 2>{U, V});
  return Trie<2, int64_t>::fromKeys(std::move(Keys), 1);
}

/// The fused count for one order, with the relations already oriented and
/// assigned by the loop depths their two variables occupy: T01 spans
/// depths (0,1), T02 spans (0,2), T12 spans (1,2). In a triangle each
/// relation misses exactly one variable, so every order uses each lift
/// shape exactly once — this is queries_triangle.cpp's triangleFused with
/// the slots made explicit.
int64_t fusedCount(const Trie<2, int64_t> &T01, const Trie<2, int64_t> &T02,
                   const Trie<2, int64_t> &T12) {
  auto L01 = mapStream(T01.stream(), [](auto Lev) {
    return mapStream(std::move(Lev),
                     [](int64_t V) { return repeatUnbounded(V); });
  });
  auto L12 = repeatUnbounded(T12.stream());
  auto L02 = mapStream(T02.stream(), [](auto Lev) {
    return repeatUnbounded(std::move(Lev));
  });
  using K = I64Semiring;
  return sumAll<K>(mulStreams<K>(L01, mulStreams<K>(L12, L02)));
}

/// Extent of each variable: one past the largest vertex id that can reach
/// it from either incident relation.
std::array<int64_t, 3> varExtents(const EdgeList &Rab, const EdgeList &Sbc,
                                  const EdgeList &Tca) {
  std::array<int64_t, 3> N{1, 1, 1};
  for (auto [A, B] : Rab.Edges) {
    N[0] = std::max<int64_t>(N[0], A + 1);
    N[1] = std::max<int64_t>(N[1], B + 1);
  }
  for (auto [B, C] : Sbc.Edges) {
    N[1] = std::max<int64_t>(N[1], B + 1);
    N[2] = std::max<int64_t>(N[2], C + 1);
  }
  for (auto [C, A] : Tca.Edges) {
    N[2] = std::max<int64_t>(N[2], C + 1);
    N[0] = std::max<int64_t>(N[0], A + 1);
  }
  return N;
}

TensorStats edgeStats(std::string Name, const EdgeList &G, Attr First,
                      Attr Second, int64_t NFirst, int64_t NSecond) {
  std::vector<Tuple> Tuples;
  Tuples.reserve(G.Edges.size());
  for (auto [U, V] : G.Edges)
    Tuples.push_back({U, V});
  TensorStats S = statsFromTuples(
      std::move(Name), {First, Second},
      {LevelSpec::Compressed, LevelSpec::Compressed}, {NFirst, NSecond},
      Tuples);
  S.CanTranspose = true;
  return S;
}

} // namespace

TriangleJoinPlan etch::planTriangleJoin(const EdgeList &Rab,
                                        const EdgeList &Sbc,
                                        const EdgeList &Tca) {
  const auto &V = joinVars();
  auto N = varExtents(Rab, Sbc, Tca);

  PlanQuery Q;
  PlanTerm Term;
  Term.Factors = {{"R", {V[0], V[1]}},  // R(a, b), stored (a, b)
                  {"S", {V[1], V[2]}},  // S(b, c), stored (b, c)
                  {"T", {V[2], V[0]}}}; // T(c, a), stored (c, a)
  Term.Summed = {V[0], V[1], V[2]};
  Q.Terms.push_back(std::move(Term));
  Q.Stats.emplace("R", edgeStats("R", Rab, V[0], V[1], N[0], N[1]));
  Q.Stats.emplace("S", edgeStats("S", Sbc, V[1], V[2], N[1], N[2]));
  Q.Stats.emplace("T", edgeStats("T", Tca, V[2], V[0], N[2], N[0]));
  for (int I = 0; I < 3; ++I)
    Q.Dims.emplace(V[static_cast<size_t>(I)].id(), N[static_cast<size_t>(I)]);

  // Tries are built per orientation inside the prepare step, so an order
  // that flips a relation's key costs nothing extra.
  PlanOptions O;
  O.TransposeCostPerNnz = 0.0;
  auto Best = bestPlan(Q, O);
  ETCH_ASSERT(Best, "the triangle query always has a realizable order");

  TriangleJoinPlan JP;
  JP.Cost = Best->cost();
  JP.Explain = Best->explain(Q);
  for (size_t P = 0; P < 3; ++P)
    for (int I = 0; I < 3; ++I)
      if (Best->Order[P].id() == V[static_cast<size_t>(I)].id())
        JP.VarOrder[P] = I;
  return JP;
}

int64_t etch::triangleFusedOrdered(const EdgeList &Rab, const EdgeList &Sbc,
                                   const EdgeList &Tca,
                                   const std::array<int, 3> &VarOrder) {
  std::array<int, 3> Depth{};
  for (int P = 0; P < 3; ++P)
    Depth[static_cast<size_t>(VarOrder[static_cast<size_t>(P)])] = P;

  // Each relation spans the depths of its two variables, oriented so the
  // shallower one is its outer trie level; its slot (01/02/12) is fixed by
  // the depth of the variable it misses.
  struct Rel {
    const EdgeList *G;
    int First, Second; ///< Stored key components, as variable numbers.
  };
  const std::array<Rel, 3> Rels = {
      Rel{&Rab, 0, 1}, Rel{&Sbc, 1, 2}, Rel{&Tca, 2, 0}};
  const Trie<2, int64_t> *Slots[3] = {nullptr, nullptr, nullptr};
  std::array<Trie<2, int64_t>, 3> Built;
  for (size_t I = 0; I < 3; ++I) {
    const Rel &R = Rels[I];
    int DF = Depth[static_cast<size_t>(R.First)];
    int DS = Depth[static_cast<size_t>(R.Second)];
    Built[I] = trieOf(*R.G, DF > DS);
    int Missing = 3 - R.First - R.Second;
    Slots[Depth[static_cast<size_t>(Missing)]] = &Built[I];
  }
  // Slot index = depth of the missing variable: 2 -> spans (0,1), etc.
  return fusedCount(*Slots[2], *Slots[1], *Slots[0]);
}

int64_t etch::triangleFusedPlanned(const EdgeList &Rab, const EdgeList &Sbc,
                                   const EdgeList &Tca,
                                   TriangleJoinPlan *PlanOut) {
  TriangleJoinPlan JP = planTriangleJoin(Rab, Sbc, Tca);
  if (PlanOut)
    *PlanOut = JP;
  return triangleFusedOrdered(Rab, Sbc, Tca, JP.VarOrder);
}

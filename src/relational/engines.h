//===- relational/engines.h - Pairwise baseline query engines --*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline execution models of Section 8.2, built from scratch:
///
///   - The *columnar engine*: vectorised pairwise hash joins over column
///     arrays with materialised intermediates — DuckDB's execution model
///     (interpreted vectorised, column-based; Figure 18).
///   - The *row-store engine*: sorted (B-tree-like) indexes probed one
///     outer row at a time with materialised row intermediates — SQLite's
///     model (interpreted row-based; Figure 18).
///
/// Both are *pairwise*: every join materialises its result before the next
/// join runs. That is the property the paper's evaluation isolates — on the
/// triangle query any pairwise plan must materialise a Θ(n²) intermediate
/// (Ngo et al.), while the fused indexed-stream plan runs in Θ(n).
///
/// Queries are built from these primitives in the bench/example code, the
/// way a DBMS executor interprets a physical plan.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_ENGINES_H
#define ETCH_RELATIONAL_ENGINES_H

#include "core/krelation.h" // Idx

#include <cstdint>
#include <span>
#include <vector>

namespace etch {

/// Row indices into a table (selection vectors / join outputs).
using RowId = uint32_t;

//===----------------------------------------------------------------------===//
// Columnar (vectorised hash join) engine
//===----------------------------------------------------------------------===//

/// A chained hash table from key to build-side row ids, sized once.
class HashIndex {
public:
  /// Builds over \p Keys (one entry per build row).
  explicit HashIndex(std::span<const Idx> Keys);

  /// Appends every build row whose key equals \p Key to \p Out.
  void probe(Idx Key, std::vector<RowId> &Out) const;

  /// Returns some build row with key \p Key, or -1 (unique-key fast path).
  int64_t probeOne(Idx Key) const;

private:
  size_t bucketOf(Idx Key) const {
    // Fibonacci hashing on the key.
    return static_cast<size_t>(
               (static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL) >>
               Shift);
  }
  std::span<const Idx> Keys;
  std::vector<int32_t> Heads; ///< Bucket -> first row (-1 empty).
  std::vector<int32_t> Next;  ///< Row -> next row in bucket (-1 end).
  int Shift = 0;
};

/// The materialised result of a pairwise join: parallel row-id vectors.
struct JoinPairs {
  std::vector<RowId> Left, Right;
  size_t size() const { return Left.size(); }
};

/// Vectorised hash join: builds on \p BuildKeys, probes every
/// \p ProbeKeys[i] (i ranges over \p ProbeSel if non-empty, else all rows),
/// and materialises all matching (build row, probe row) pairs.
JoinPairs hashJoin(std::span<const Idx> BuildKeys,
                   std::span<const Idx> ProbeKeys,
                   std::span<const RowId> ProbeSel = {});

/// Gathers Column[Sel[i]] — the materialisation step between pairwise
/// joins.
std::vector<Idx> gather(std::span<const Idx> Column,
                        std::span<const RowId> Sel);
std::vector<double> gather(std::span<const double> Column,
                           std::span<const RowId> Sel);

/// Vectorised filter: row ids where Pred(Column[i]).
template <typename Pred>
std::vector<RowId> filterRows(std::span<const Idx> Column, Pred &&P) {
  std::vector<RowId> Out;
  for (size_t I = 0; I < Column.size(); ++I)
    if (P(Column[I]))
      Out.push_back(static_cast<RowId>(I));
  return Out;
}

//===----------------------------------------------------------------------===//
// Row-store (sorted index, tuple-at-a-time) engine
//===----------------------------------------------------------------------===//

/// A sorted secondary index (standing in for SQLite's B-trees): (key, row)
/// pairs ordered by key, probed by binary search.
class SortedIndex {
public:
  explicit SortedIndex(std::span<const Idx> Keys);

  /// Calls \p Fn(row) for every row whose key equals \p Key.
  template <typename F> void scanEqual(Idx Key, F &&Fn) const {
    size_t Lo = lowerBound(Key);
    while (Lo < Entries.size() && Entries[Lo].first == Key)
      Fn(Entries[Lo++].second);
  }

  size_t size() const { return Entries.size(); }

private:
  size_t lowerBound(Idx Key) const;
  std::vector<std::pair<Idx, RowId>> Entries;
};

} // namespace etch

#endif // ETCH_RELATIONAL_ENGINES_H

//===- relational/queries.h - Q5 / Q9 / triangle, three ways ---*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three relational workloads of Section 8.2, each implemented on the
/// three execution models compared in Figures 19–20:
///
///   - `*Fused`    : indexed streams over trie indexes (the Etch side).
///     These are the paper's manual SQL->contraction translations, with the
///     same optimiser-style choices made by hand: per-table formats, one
///     global column order per query, and selection pushdown.
///   - `*Columnar` : pairwise vectorised hash joins with materialised
///     intermediates (the DuckDB model).
///   - `*RowStore` : tuple-at-a-time sorted-index (B-tree-style) nested
///     loops (the SQLite model).
///
/// And `*Reference`: a direct nested-loop evaluation used as the oracle in
/// tests (never benchmarked).
///
/// TPC-H Q5 (local supplier volume): revenue by nation for ASIA customers
/// whose order's supplier is in the customer's nation, orders in 1994.
/// TPC-H Q9 (product type profit): profit by (nation, year) over parts
/// whose name contains "green".
/// Triangle: Σ_{a,b,c} R(a,b)·S(b,c)·T(c,a) on the worst-case family of
/// Ngo et al. (fused: Θ(n); any pairwise plan: Θ(n²)).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_QUERIES_H
#define ETCH_RELATIONAL_QUERIES_H

#include "relational/tpch.h"
#include "support/threadpool.h"

#include <array>
#include <memory>
#include <utility>

namespace etch {

/// Q5 output: revenue per nation (ASIA nations only are nonzero).
using Q5Result = std::array<double, 25>;

/// Q9 output: profit per (nation, year), flattened as nation * 7 + (year -
/// 1992).
using Q9Result = std::array<double, 25 * 7>;

/// Pre-built physical structures, mirroring the paper's methodology of
/// loading data and building indexes before timing queries: the fused side
/// owns trie indexes ("static data structures optimized for analytics of
/// data sets at rest"), the row store owns its sorted (B-tree-like)
/// indexes. The columnar engine, like DuckDB, builds hash tables inside
/// the query.
struct Q5Prepared;
struct Q9Prepared;
struct TrianglePrepared;

std::unique_ptr<Q5Prepared> q5Prepare(const TpchDb &Db);
Q5Result q5Fused(const TpchDb &Db, const Q5Prepared &P);
Q5Result q5RowStore(const TpchDb &Db, const Q5Prepared &P);
Q5Result q5Columnar(const TpchDb &Db);
Q5Result q5Reference(const TpchDb &Db);

/// One-shot conveniences (prepare + run), used by tests.
Q5Result q5Fused(const TpchDb &Db);
Q5Result q5RowStore(const TpchDb &Db);

std::unique_ptr<Q9Prepared> q9Prepare(const TpchDb &Db);
Q9Result q9Fused(const TpchDb &Db, const Q9Prepared &P);
Q9Result q9RowStore(const TpchDb &Db, const Q9Prepared &P);
Q9Result q9Columnar(const TpchDb &Db);
Q9Result q9Reference(const TpchDb &Db);

Q9Result q9Fused(const TpchDb &Db);
Q9Result q9RowStore(const TpchDb &Db);

//===----------------------------------------------------------------------===//
// Revenue over a sparse key space (the hashed-destination workload)
//===----------------------------------------------------------------------===//

/// The external (sparse) identifier of a customer: custkey scattered
/// injectively into a 2^40 ID space, modelling un-dictionary-encoded user
/// IDs (the ROADMAP's sparse-keyed workload). Injective because the
/// multiplier is odd (invertible mod 2^40).
inline Idx sparseCustomerId(Idx CustKey) {
  return (CustKey * 0x9E3779B1LL + 7) & ((Idx(1) << 40) - 1);
}

/// Revenue per customer, grouped by sparseCustomerId: the TPC-H `revenue`
/// view keyed by external IDs. A dense group-by array would need O(2^40)
/// slots; this accumulates into a hashed destination with O(customers)
/// memory. Returns (sparse id, revenue) pairs in id order.
std::vector<std::pair<Idx, double>> revenueBySparseKey(const TpchDb &Db);

/// Nested-loop oracle for revenueBySparseKey (dense over the *dictionary*
/// key space, remapped; never benchmarked).
std::vector<std::pair<Idx, double>>
revenueBySparseKeyReference(const TpchDb &Db);

/// An edge list over integer vertices; the triangle query takes three.
struct EdgeList {
  std::vector<std::pair<Idx, Idx>> Edges;
};

/// The Θ(n)-output worst case for pairwise joins (Figure 20's instance):
/// ({0} x [n]) ∪ ([n] x {0}).
EdgeList triangleWorstCase(Idx N);

/// A uniform random graph with E edges over N vertices.
EdgeList randomEdges(Rng &R, Idx N, size_t E);

std::unique_ptr<TrianglePrepared> trianglePrepare(const EdgeList &Rab,
                                                  const EdgeList &Sbc,
                                                  const EdgeList &Tca);
int64_t triangleFused(const TrianglePrepared &P);

/// The fused triangle query with its outermost (a) level partitioned across
/// \p Pool (streams/parallel.h); per-chunk counts reduce in chunk order.
/// Chunks == 0 picks 4x the pool's thread count. Bit-identical to
/// triangleFused for any chunk/thread configuration (integer semiring).
int64_t triangleFusedParallel(ThreadPool &Pool, const TrianglePrepared &P,
                              size_t Chunks = 0);

/// The planner-scheduled variant of triangleFused: the same GenericJoin
/// intersections as raw galloping merges over the trie arrays (preserving
/// the worst-case-optimal skip behavior of the Gallop stream policy),
/// with no stream-object state between levels. Bit-identical to
/// triangleFused — the count is an exact integer sum.
int64_t triangleFusedTiled(const TrianglePrepared &P);

/// triangleFusedTiled with the outermost a intersection partitioned into
/// contiguous ranges of R's top trie level across \p Pool; per-chunk
/// counts reduce in chunk order (exact for the integer semiring).
int64_t triangleFusedTiledParallel(ThreadPool &Pool,
                                   const TrianglePrepared &P,
                                   size_t Chunks = 0);
int64_t triangleRowStore(const EdgeList &Rab, const EdgeList &Sbc,
                         const EdgeList &Tca, const TrianglePrepared &P);

int64_t triangleFused(const EdgeList &Rab, const EdgeList &Sbc,
                      const EdgeList &Tca);
int64_t triangleColumnar(const EdgeList &Rab, const EdgeList &Sbc,
                         const EdgeList &Tca);
int64_t triangleRowStore(const EdgeList &Rab, const EdgeList &Sbc,
                         const EdgeList &Tca);
int64_t triangleReference(const EdgeList &Rab, const EdgeList &Sbc,
                          const EdgeList &Tca);

} // namespace etch

#endif // ETCH_RELATIONAL_QUERIES_H

//===- relational/groupby.h - Dense and hashed group-by keys ---*- C++ -*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Group-by accumulators for the relational queries, formalising the choice
/// DESIGN.md row 10 used to gloss over. The legacy pattern — a dense array
/// indexed by group key — silently allocates O(key space); fine for TPC-H's
/// 25 nations, catastrophic for sparse external identifiers. Here:
///
///   - DenseGroupBy keeps the dense array but *guards the extent*: asking
///     for a key space beyond MaxDenseGroupByExtent aborts with a clear
///     message instead of silently allocating gigabytes.
///   - HashedGroupBy accumulates into a HashedVector (formats/levels.h):
///     O(distinct groups) memory regardless of key space, O(1) per add.
///   - GroupBy picks between them by extent, so callers default to the
///     right structure: dense for genuinely small key spaces (TPC-H
///     nations), hashed for sparse ones (the ROADMAP's user-ID workloads).
///
/// This is the runtime twin of the compiled `hashDest` lowering
/// (compiler/codegen.h); both accumulate into the paper's hash-table
/// output format.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_GROUPBY_H
#define ETCH_RELATIONAL_GROUPBY_H

#include "formats/levels.h"
#include "support/assert.h"

#include <memory>
#include <utility>
#include <vector>

namespace etch {

/// Largest key space the dense group-by path may allocate (2^20 slots,
/// 8 MiB of doubles). Beyond this, use HashedGroupBy — or GroupBy, which
/// switches automatically.
inline constexpr Idx MaxDenseGroupByExtent = Idx(1) << 20;

/// The legacy dense path: one slot per key in [0, Extent). Constructing
/// one over a sparse key space is a bug, and now fails loudly.
template <typename V> class DenseGroupBy {
public:
  explicit DenseGroupBy(Idx Extent) {
    ETCH_ASSERT(Extent >= 0, "negative group-by extent");
    ETCH_ASSERT(Extent <= MaxDenseGroupByExtent,
                "dense group-by over a sparse key space (extent exceeds "
                "MaxDenseGroupByExtent): use a hashed group-by");
    Slots.assign(static_cast<size_t>(Extent), V());
  }

  void add(Idx Key, V X) { slot(Key) += X; }

  /// Direct slot access for hot loops that hoist the group's accumulator.
  V &slot(Idx Key) { return Slots[static_cast<size_t>(Key)]; }

  /// Nonzero groups in key order.
  std::vector<std::pair<Idx, V>> sortedEntries() const {
    std::vector<std::pair<Idx, V>> Out;
    for (size_t K = 0; K < Slots.size(); ++K)
      if (!(Slots[K] == V()))
        Out.push_back({static_cast<Idx>(K), Slots[K]});
    return Out;
  }

  size_t memoryBytes() const { return Slots.capacity() * sizeof(V); }

  const std::vector<V> &dense() const { return Slots; }

private:
  std::vector<V> Slots;
};

/// Hash-table group-by: O(distinct groups) memory however large the key
/// space. Accumulation is unordered; sortedEntries() freezes the snapshot.
template <typename V> class HashedGroupBy {
public:
  explicit HashedGroupBy(Idx Extent, size_t ExpectedGroups = 0)
      : Vec(Extent, ExpectedGroups) {}

  void add(Idx Key, V X) { Vec.accumulate(Key, X); }

  /// The group's accumulator, created zero on first touch. The reference
  /// is valid until the next add/slot with a *different* new key.
  V &slot(Idx Key) { return Vec.slot(Key); }

  size_t groups() const { return Vec.nnz(); }

  /// All groups in key order (freezes the underlying vector).
  std::vector<std::pair<Idx, V>> sortedEntries() {
    Vec.freeze();
    std::vector<std::pair<Idx, V>> Out;
    Out.reserve(Vec.nnz());
    for (size_t P = 0; P < Vec.nnz(); ++P)
      Out.push_back({Vec.Crd[P], Vec.Val[P]});
    return Out;
  }

  size_t memoryBytes() const {
    return Vec.Crd.capacity() * sizeof(Idx) + Vec.Val.capacity() * sizeof(V) +
           Vec.table().buckets() * (sizeof(int64_t) + sizeof(size_t));
  }

  HashedVector<V> &vector() { return Vec; }

private:
  HashedVector<V> Vec;
};

/// The default: dense for small key spaces, hashed for sparse ones.
template <typename V> class GroupBy {
public:
  /// Key spaces up to this extent stay dense (cheap, cache-friendly, no
  /// hashing); larger ones go hashed regardless of MaxDenseGroupByExtent.
  static constexpr Idx DenseCutoff = Idx(1) << 16;

  explicit GroupBy(Idx Extent, size_t ExpectedGroups = 0) {
    if (Extent <= DenseCutoff)
      D = std::make_unique<DenseGroupBy<V>>(Extent);
    else
      H = std::make_unique<HashedGroupBy<V>>(Extent, ExpectedGroups);
  }

  bool isDense() const { return D != nullptr; }

  void add(Idx Key, V X) { D ? D->add(Key, X) : H->add(Key, X); }

  V &slot(Idx Key) { return D ? D->slot(Key) : H->slot(Key); }

  std::vector<std::pair<Idx, V>> sortedEntries() {
    return D ? D->sortedEntries() : H->sortedEntries();
  }

  size_t memoryBytes() const {
    return D ? D->memoryBytes() : H->memoryBytes();
  }

private:
  std::unique_ptr<DenseGroupBy<V>> D;
  std::unique_ptr<HashedGroupBy<V>> H;
};

} // namespace etch

#endif // ETCH_RELATIONAL_GROUPBY_H

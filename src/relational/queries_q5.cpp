//===- relational/queries_q5.cpp - TPC-H Q5 on three engines -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Q5 as a contraction expression (the manual translation of Section 8.2):
//
//   rev(n) = Σ_c Σ_o Σ_s  asia(n) · customer(n,c) · orders(c,o)
//                        · lineitem(o,s) · supplier(n,s)
//
// with orders pre-filtered to the 1994 date window (selection pushdown)
// and the region join folded into the per-nation indicator asia(n) — the
// kind of choice the paper notes is "analogous to those made by a query
// optimizer". Column order: nation < custkey < orderkey < suppkey.
//
//===----------------------------------------------------------------------===//

#include "relational/groupby.h"
#include "relational/prepared.h"
#include "streams/combinators.h"
#include "streams/eval.h"

using namespace etch;

//===----------------------------------------------------------------------===//
// Preparation (index building; outside the timed region)
//===----------------------------------------------------------------------===//

std::unique_ptr<Q5Prepared> etch::q5Prepare(const TpchDb &Db) {
  // The orders trie holds every order: filters run fused at query time.
  std::vector<std::array<Idx, 2>> OrdKeys;
  OrdKeys.reserve(Db.numOrders());
  for (size_t O = 0; O < Db.numOrders(); ++O)
    OrdKeys.push_back({Db.OrdCust[O], static_cast<Idx>(O)});

  // lineitem with a dense order level: counting sort into slices.
  std::vector<size_t> LiPos(Db.numOrders() + 1, 0);
  for (size_t L = 0; L < Db.numLineitems(); ++L)
    ++LiPos[static_cast<size_t>(Db.LiOrder[L]) + 1];
  for (size_t O = 0; O < Db.numOrders(); ++O)
    LiPos[O + 1] += LiPos[O];
  std::vector<Idx> LiS(Db.numLineitems());
  std::vector<double> LiRev(Db.numLineitems());
  {
    std::vector<size_t> Cursor(LiPos.begin(), LiPos.end() - 1);
    for (size_t L = 0; L < Db.numLineitems(); ++L) {
      size_t Slot = Cursor[static_cast<size_t>(Db.LiOrder[L])]++;
      LiS[Slot] = Db.LiSupp[L];
      LiRev[Slot] = Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]);
    }
  }

  std::vector<Idx> SuppRowKeys(Db.numSuppliers());
  for (size_t S = 0; S < Db.numSuppliers(); ++S)
    SuppRowKeys[S] = static_cast<Idx>(S);

  return std::unique_ptr<Q5Prepared>(new Q5Prepared{
      Trie<2, double>::fromKeys(std::move(OrdKeys), 1.0),
      std::move(LiPos), std::move(LiS), std::move(LiRev),
      SortedIndex(Db.LiOrder), SortedIndex(SuppRowKeys)});
}

//===----------------------------------------------------------------------===//
// Fused (indexed streams)
//===----------------------------------------------------------------------===//

Q5Result etch::q5Fused(const TpchDb &Db, const Q5Prepared &P) {
  // Column order [c, o, s] over base tries. The region predicate — a
  // boolean-valued stream over the customer level — prunes whole customers
  // before their orders are touched (hierarchical iteration); the date
  // predicate prunes orders before their lineitems; the supplier join is a
  // functional lookup with the residual predicate s_nation == c_nation.
  // Nation keys are a genuinely dense space (25), so the group-by
  // selector keeps the dense path; a sparse key space would switch to the
  // hashed destination (see queries_revenue.cpp).
  GroupBy<double> Groups(static_cast<Idx>(std::tuple_size_v<Q5Result>));
  forEach(P.Ord.stream(), [&](Idx C, auto OLevel) {
    Idx N = Db.CustNation[static_cast<size_t>(C)];
    if (Db.NationRegion[static_cast<size_t>(N)] != TpchDb::asiaRegion())
      return;
    double &Acc = Groups.slot(N);
    forEach(std::move(OLevel), [&](Idx O, double) {
      if (Db.OrdDate[static_cast<size_t>(O)] < TpchDb::q5DateLo() ||
          Db.OrdDate[static_cast<size_t>(O)] >= TpchDb::q5DateHi())
        return;
      for (size_t Q = P.LiPos[static_cast<size_t>(O)];
           Q < P.LiPos[static_cast<size_t>(O) + 1]; ++Q)
        if (Db.SuppNation[static_cast<size_t>(P.LiS[Q])] == N)
          Acc += P.LiRev[Q];
    });
  });
  Q5Result Out{};
  for (auto [N, Rev] : Groups.sortedEntries())
    Out[static_cast<size_t>(N)] = Rev;
  return Out;
}

Q5Result etch::q5Fused(const TpchDb &Db) {
  return q5Fused(Db, *q5Prepare(Db));
}

//===----------------------------------------------------------------------===//
// Columnar (pairwise vectorised hash joins, materialised intermediates)
//===----------------------------------------------------------------------===//

Q5Result etch::q5Columnar(const TpchDb &Db) {
  // Plan: σ_date(orders) ⋈ customer ⋈ lineitem ⋈ supplier, then the
  // n_nation = s_nation filter and the ASIA filter, group-by nation.
  // Every join materialises gathered key columns (the DuckDB model).
  std::vector<RowId> OrdSel = filterRows(Db.OrdDate, [](Idx D) {
    return D >= TpchDb::q5DateLo() && D < TpchDb::q5DateHi();
  });

  // orders ⋈ customer on custkey. Customer keys are their row ids, so the
  // "join" gathers c_nationkey through a hash table, as an engine would.
  std::vector<Idx> CustKeys(Db.numCustomers());
  for (size_t C = 0; C < Db.numCustomers(); ++C)
    CustKeys[C] = static_cast<Idx>(C);
  JoinPairs OC = hashJoin(CustKeys, Db.OrdCust, OrdSel);
  // Materialise: per matched order row, its orderkey and customer nation.
  // (With a probe selection, JoinPairs.Right already holds actual row ids.)
  const std::vector<RowId> &OrdRows = OC.Right;
  std::vector<Idx> OrdKey(OrdRows.size());
  for (size_t I = 0; I < OrdRows.size(); ++I)
    OrdKey[I] = static_cast<Idx>(OrdRows[I]);
  std::vector<Idx> OrdCustNation = gather(Db.CustNation, OC.Left);

  // lineitem ⋈ (orders ⋈ customer) on orderkey.
  JoinPairs LO = hashJoin(OrdKey, Db.LiOrder);
  std::vector<Idx> LiSupp2 = gather(Db.LiSupp, LO.Right);
  std::vector<Idx> LiCustNation;
  LiCustNation.reserve(LO.size());
  for (size_t I = 0; I < LO.size(); ++I)
    LiCustNation.push_back(OrdCustNation[LO.Left[I]]);
  std::vector<double> LiRevenue;
  LiRevenue.reserve(LO.size());
  for (size_t I = 0; I < LO.size(); ++I) {
    RowId L = LO.Right[I];
    LiRevenue.push_back(Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]));
  }

  // ⋈ supplier on suppkey, then filter s_nation == c_nation and ASIA.
  Q5Result Out{};
  for (size_t I = 0; I < LiSupp2.size(); ++I) {
    Idx SNat = Db.SuppNation[static_cast<size_t>(LiSupp2[I])];
    if (SNat != LiCustNation[I])
      continue;
    if (Db.NationRegion[static_cast<size_t>(SNat)] != TpchDb::asiaRegion())
      continue;
    Out[static_cast<size_t>(SNat)] += LiRevenue[I];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Row store (tuple-at-a-time index nested loops)
//===----------------------------------------------------------------------===//

Q5Result etch::q5RowStore(const TpchDb &Db, const Q5Prepared &P) {
  // SQLite-style plan: scan orders; per order, probe the customer table,
  // then the lineitem-by-orderkey B-tree; per lineitem, probe the supplier
  // B-tree; evaluate the residual predicates row by row.
  Q5Result Out{};
  for (size_t O = 0; O < Db.numOrders(); ++O) {
    if (Db.OrdDate[O] < TpchDb::q5DateLo() ||
        Db.OrdDate[O] >= TpchDb::q5DateHi())
      continue;
    Idx CNat = Db.CustNation[static_cast<size_t>(Db.OrdCust[O])];
    if (Db.NationRegion[static_cast<size_t>(CNat)] != TpchDb::asiaRegion())
      continue;
    P.LiByOrder.scanEqual(static_cast<Idx>(O), [&](RowId L) {
      P.SuppByKey.scanEqual(Db.LiSupp[L], [&](RowId S) {
        if (Db.SuppNation[S] != CNat)
          return;
        Out[static_cast<size_t>(CNat)] +=
            Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]);
      });
    });
  }
  return Out;
}

Q5Result etch::q5RowStore(const TpchDb &Db) {
  return q5RowStore(Db, *q5Prepare(Db));
}

//===----------------------------------------------------------------------===//
// Reference oracle
//===----------------------------------------------------------------------===//

Q5Result etch::q5Reference(const TpchDb &Db) {
  Q5Result Out{};
  for (size_t L = 0; L < Db.numLineitems(); ++L) {
    size_t O = static_cast<size_t>(Db.LiOrder[L]);
    if (Db.OrdDate[O] < TpchDb::q5DateLo() ||
        Db.OrdDate[O] >= TpchDb::q5DateHi())
      continue;
    Idx CNat = Db.CustNation[static_cast<size_t>(Db.OrdCust[O])];
    Idx SNat = Db.SuppNation[static_cast<size_t>(Db.LiSupp[L])];
    if (CNat != SNat ||
        Db.NationRegion[static_cast<size_t>(SNat)] != TpchDb::asiaRegion())
      continue;
    Out[static_cast<size_t>(SNat)] +=
        Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]);
  }
  return Out;
}

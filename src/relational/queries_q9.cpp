//===- relational/queries_q9.cpp - TPC-H Q9 on three engines -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Q9 as a contraction expression:
//
//   profit(n, y) = Σ_o Σ_p Σ_s  lineitem(o,p,s) · green(p) · partsupp(p,s)
//                             · supplier(s,n) · year(o,y)
//
// Column order: orderkey < partkey < suppkey. The supplier -> nation and
// order -> year maps are functional, so they lower to lookups on the
// group-by path (a user-defined function in Etch terms — the paper's Q9
// uses exactly such custom operators for its date handling). The lineitem
// payload carries (Σ extendedprice·(1-discount), Σ quantity) so the profit
// `rev - supplycost · qty` stays linear under duplicate-key merging.
//
//===----------------------------------------------------------------------===//

#include "relational/groupby.h"
#include "relational/prepared.h"
#include "streams/combinators.h"
#include "streams/eval.h"

#include <algorithm>

using namespace etch;

namespace {

size_t cell(Idx Nation, int Year) {
  return static_cast<size_t>(Nation) * 7 + static_cast<size_t>(Year - 1992);
}

/// Leaf combiner for lineitem ⋈ partsupp: fires at the s level, where the
/// left side still has an order substream below it — scale that substream
/// by the matched supplycost (profit = rev - cost * qty, linear in the
/// merged payload).
struct ProfitCombine {
  template <typename OStream>
  auto operator()(OStream Orders, double Cost) const {
    return mapStream(std::move(Orders), [Cost](const Q9LiAgg &A) {
      return A.Rev - Cost * A.Qty;
    });
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Preparation
//===----------------------------------------------------------------------===//

std::unique_ptr<Q9Prepared> etch::q9Prepare(const TpchDb &Db) {
  std::vector<std::pair<std::array<Idx, 3>, Q9LiAgg>> LiRows;
  LiRows.reserve(Db.numLineitems());
  for (size_t L = 0; L < Db.numLineitems(); ++L)
    LiRows.push_back(
        {{Db.LiPart[L], Db.LiSupp[L], Db.LiOrder[L]},
         {Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]),
          Db.LiQuantity[L]}});

  std::vector<std::pair<std::array<Idx, 2>, double>> PsRows;
  PsRows.reserve(Db.PsPart.size());
  for (size_t I = 0; I < Db.PsPart.size(); ++I)
    PsRows.push_back({{Db.PsPart[I], Db.PsSupp[I]}, Db.PsSupplyCost[I]});

  const Idx NS = static_cast<Idx>(Db.numSuppliers());
  std::vector<Idx> PartKeys(Db.numParts());
  for (size_t P = 0; P < Db.numParts(); ++P)
    PartKeys[P] = static_cast<Idx>(P);
  std::vector<Idx> PsKey(Db.PsPart.size());
  for (size_t I = 0; I < Db.PsPart.size(); ++I)
    PsKey[I] = Db.PsPart[I] * NS + Db.PsSupp[I];
  std::vector<Idx> SuppKeys(Db.numSuppliers());
  for (size_t S = 0; S < Db.numSuppliers(); ++S)
    SuppKeys[S] = static_cast<Idx>(S);

  return std::unique_ptr<Q9Prepared>(new Q9Prepared{
      Trie<3, Q9LiAgg>::fromRows(std::move(LiRows),
                                 [](Q9LiAgg &A, const Q9LiAgg &B) {
                                   A.Rev += B.Rev;
                                   A.Qty += B.Qty;
                                 }),
      Trie<2, double>::fromRows(std::move(PsRows), [](double &, double) {}),
      SortedIndex(PartKeys), SortedIndex(PsKey), SortedIndex(SuppKeys)});
}

//===----------------------------------------------------------------------===//
// Fused (indexed streams)
//===----------------------------------------------------------------------===//

Q9Result etch::q9Fused(const TpchDb &Db, const Q9Prepared &P) {
  // Column order [p, s, o]: the green(p) predicate — a boolean-valued
  // stream, the paper's Q9 encoding of substring matching — prunes whole
  // (s, o) subtrees at the outermost level; partsupp joins at (p, s); and
  // every trie is traversed exactly once.
  auto Profit = joinStreams(ProfitCombine{}, P.Line.stream(),
                            P.Ps.stream());

  // (nation, year) cells are a dense space (25 * 7), so the group-by
  // selector keeps the dense path.
  GroupBy<double> Groups(static_cast<Idx>(std::tuple_size_v<Q9Result>));
  forEach(std::move(Profit), [&](Idx Part, auto SLevel) {
    if (!Db.PartGreen[static_cast<size_t>(Part)])
      return;
    forEach(std::move(SLevel), [&](Idx S, auto OLevel) {
      Idx Nation = Db.SuppNation[static_cast<size_t>(S)];
      forEach(std::move(OLevel), [&](Idx O, double Amount) {
        int Year = TpchDb::yearOfDate(Db.OrdDate[static_cast<size_t>(O)]);
        Groups.add(static_cast<Idx>(cell(Nation, Year)), Amount);
      });
    });
  });
  Q9Result Out{};
  for (auto [Cell, Profit2] : Groups.sortedEntries())
    Out[static_cast<size_t>(Cell)] = Profit2;
  return Out;
}

Q9Result etch::q9Fused(const TpchDb &Db) {
  return q9Fused(Db, *q9Prepare(Db));
}

//===----------------------------------------------------------------------===//
// Columnar (pairwise vectorised hash joins)
//===----------------------------------------------------------------------===//

Q9Result etch::q9Columnar(const TpchDb &Db) {
  // Plan: σ_green(part) ⋈ lineitem on partkey; ⋈ partsupp on the
  // composite (partkey, suppkey); then lookups join orders and supplier.
  std::vector<Idx> GreenParts;
  for (size_t P = 0; P < Db.numParts(); ++P)
    if (Db.PartGreen[P])
      GreenParts.push_back(static_cast<Idx>(P));
  JoinPairs LP = hashJoin(GreenParts, Db.LiPart);

  // Materialise the surviving lineitem columns.
  std::vector<Idx> LiOrder2 = gather(Db.LiOrder, LP.Right);
  std::vector<Idx> LiSupp2 = gather(Db.LiSupp, LP.Right);
  std::vector<Idx> LiPart2 = gather(Db.LiPart, LP.Right);
  std::vector<double> LiRev2, LiQty2;
  LiRev2.reserve(LP.size());
  LiQty2.reserve(LP.size());
  for (RowId L : LP.Right) {
    LiRev2.push_back(Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]));
    LiQty2.push_back(Db.LiQuantity[L]);
  }

  // ⋈ partsupp on composite key partkey * S + suppkey.
  const Idx NS = static_cast<Idx>(Db.numSuppliers());
  std::vector<Idx> PsKey(Db.PsPart.size());
  for (size_t I = 0; I < Db.PsPart.size(); ++I)
    PsKey[I] = Db.PsPart[I] * NS + Db.PsSupp[I];
  std::vector<Idx> LiKey(LiPart2.size());
  for (size_t I = 0; I < LiPart2.size(); ++I)
    LiKey[I] = LiPart2[I] * NS + LiSupp2[I];
  JoinPairs LPS = hashJoin(PsKey, LiKey);

  Q9Result Out{};
  for (size_t I = 0; I < LPS.size(); ++I) {
    RowId Li = LPS.Right[I];
    double Profit =
        LiRev2[Li] - Db.PsSupplyCost[LPS.Left[I]] * LiQty2[Li];
    Idx S = LiSupp2[Li];
    int Year = TpchDb::yearOfDate(
        Db.OrdDate[static_cast<size_t>(LiOrder2[Li])]);
    Out[cell(Db.SuppNation[static_cast<size_t>(S)], Year)] += Profit;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Row store (tuple-at-a-time index nested loops)
//===----------------------------------------------------------------------===//

Q9Result etch::q9RowStore(const TpchDb &Db, const Q9Prepared &P) {
  // Scan lineitem; per tuple probe part, partsupp (composite), orders, and
  // supplier through B-tree-like indexes.
  const Idx NS = static_cast<Idx>(Db.numSuppliers());
  Q9Result Out{};
  for (size_t L = 0; L < Db.numLineitems(); ++L) {
    bool Green = false;
    P.PartByKey.scanEqual(Db.LiPart[L],
                          [&](RowId Pr) { Green = Db.PartGreen[Pr] != 0; });
    if (!Green)
      continue;
    double Rev = Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]);
    int Year = TpchDb::yearOfDate(
        Db.OrdDate[static_cast<size_t>(Db.LiOrder[L])]);
    P.PsByKey.scanEqual(Db.LiPart[L] * NS + Db.LiSupp[L], [&](RowId Ps) {
      double Profit = Rev - Db.PsSupplyCost[Ps] * Db.LiQuantity[L];
      P.SuppByKey.scanEqual(Db.LiSupp[L], [&](RowId S) {
        Out[cell(Db.SuppNation[S], Year)] += Profit;
      });
    });
  }
  return Out;
}

Q9Result etch::q9RowStore(const TpchDb &Db) {
  return q9RowStore(Db, *q9Prepare(Db));
}

//===----------------------------------------------------------------------===//
// Reference oracle
//===----------------------------------------------------------------------===//

Q9Result etch::q9Reference(const TpchDb &Db) {
  const Idx NS = static_cast<Idx>(Db.numSuppliers());
  // Direct map from composite key to supplycost.
  std::vector<std::pair<Idx, double>> Ps;
  Ps.reserve(Db.PsPart.size());
  for (size_t I = 0; I < Db.PsPart.size(); ++I)
    Ps.emplace_back(Db.PsPart[I] * NS + Db.PsSupp[I], Db.PsSupplyCost[I]);
  std::sort(Ps.begin(), Ps.end());

  Q9Result Out{};
  for (size_t L = 0; L < Db.numLineitems(); ++L) {
    if (!Db.PartGreen[static_cast<size_t>(Db.LiPart[L])])
      continue;
    Idx Key = Db.LiPart[L] * NS + Db.LiSupp[L];
    auto It = std::lower_bound(Ps.begin(), Ps.end(),
                               std::make_pair(Key, 0.0));
    for (; It != Ps.end() && It->first == Key; ++It) {
      double Profit =
          Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]) -
          It->second * Db.LiQuantity[L];
      int Year = TpchDb::yearOfDate(
          Db.OrdDate[static_cast<size_t>(Db.LiOrder[L])]);
      Out[cell(Db.SuppNation[static_cast<size_t>(Db.LiSupp[L])], Year)] +=
          Profit;
    }
  }
  return Out;
}

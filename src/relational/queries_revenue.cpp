//===- relational/queries_revenue.cpp - Revenue over sparse keys ---------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The TPC-H `revenue` view grouped by a *sparse* key: each customer's
// external identifier, scattered across a 2^40 ID space instead of the
// dense dictionary-encoded custkey. This is the workload DESIGN.md row 10's
// old dense-array approximation could not express — a dense group-by would
// allocate the whole key space — and the reason the relational layer now
// accumulates through relational/groupby.h: the GroupBy selector sees the
// 2^40 extent and picks the hashed destination, whose memory is
// O(distinct customers).
//
//===----------------------------------------------------------------------===//

#include "relational/groupby.h"
#include "relational/queries.h"

#include <algorithm>

using namespace etch;

std::vector<std::pair<Idx, double>>
etch::revenueBySparseKey(const TpchDb &Db) {
  // rev(id) = Σ_lineitem [id = sparseId(cust(order(l)))] · price·(1-disc)
  GroupBy<double> Groups(Idx(1) << 40, Db.numCustomers());
  ETCH_ASSERT(!Groups.isDense(),
              "a 2^40 key space must select the hashed destination");
  for (size_t L = 0; L < Db.numLineitems(); ++L) {
    Idx Cust = Db.OrdCust[static_cast<size_t>(Db.LiOrder[L])];
    Groups.add(sparseCustomerId(Cust),
               Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]));
  }
  return Groups.sortedEntries();
}

std::vector<std::pair<Idx, double>>
etch::revenueBySparseKeyReference(const TpchDb &Db) {
  // Dense over the dictionary key space (valid: custkeys are 0-based and
  // contiguous), then remapped to sparse IDs and sorted.
  std::vector<double> ByCust(Db.numCustomers(), 0.0);
  for (size_t L = 0; L < Db.numLineitems(); ++L) {
    Idx Cust = Db.OrdCust[static_cast<size_t>(Db.LiOrder[L])];
    ByCust[static_cast<size_t>(Cust)] +=
        Db.LiExtendedPrice[L] * (1.0 - Db.LiDiscount[L]);
  }
  std::vector<std::pair<Idx, double>> Out;
  for (size_t C = 0; C < ByCust.size(); ++C)
    if (ByCust[C] != 0.0)
      Out.push_back({sparseCustomerId(static_cast<Idx>(C)), ByCust[C]});
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===- relational/trie.h - Hierarchical (trie) relation indexes -*- C++-*-===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Etch-side physical representation of relations: a sorted trie over
/// the key columns (Example 2.1's hierarchical storage), i.e. a fully
/// compressed multi-level format — one crd/pos level per key column with a
/// payload at the leaves. Tries expose nested indexed streams, so relations
/// compose with the same multiplication/join operators as tensors; the loop
/// structure this induces is exactly the GenericJoin / worst-case-optimal
/// shape of Section 5.4.2.
///
/// The rank is a template parameter (relational schemas are static), the
/// payload type is generic (indicator, count, or a record struct), and
/// duplicate keys fold through a caller-supplied merge.
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_TRIE_H
#define ETCH_RELATIONAL_TRIE_H

#include "streams/primitives.h"
#include "support/assert.h"

#include <algorithm>
#include <array>
#include <vector>

namespace etch {

/// A rank-R trie with payload V at the leaves.
template <int R, typename V> struct Trie {
  static_assert(R >= 1 && R <= 4, "supported ranks: 1..4");

  /// Crd[L] holds the coordinates of level L; Pos[L] (length
  /// Crd[L].size() + 1) delimits each node's children in level L + 1.
  /// Level 0 spans [0, Crd[0].size()).
  std::array<std::vector<Idx>, R> Crd;
  std::array<std::vector<size_t>, R> Pos; // Pos[R-1] unused.
  std::vector<V> Val;                     // One per leaf coordinate.

  size_t numLeaves() const { return Val.size(); }

  /// Builds a trie from (key, payload) rows. Duplicate keys merge with
  /// \p Merge (e.g. summing counts or revenues).
  template <typename Merge>
  static Trie fromRows(std::vector<std::pair<std::array<Idx, R>, V>> Rows,
                       Merge &&MergeFn) {
    std::sort(Rows.begin(), Rows.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    Trie T;
    for (size_t I = 0; I < Rows.size(); ++I) {
      const auto &[Key, Payload] = Rows[I];
      if (I > 0 && Rows[I - 1].first == Key) {
        MergeFn(T.Val.back(), Payload);
        continue;
      }
      // Find the first level where the key diverges from the previous row.
      int First = 0;
      if (I > 0) {
        while (First < R && Rows[I - 1].first[static_cast<size_t>(First)] ==
                                Key[static_cast<size_t>(First)])
          ++First;
      }
      for (int L = First; L < R; ++L) {
        T.Crd[static_cast<size_t>(L)].push_back(Key[static_cast<size_t>(L)]);
        if (L + 1 < R)
          T.Pos[static_cast<size_t>(L)].push_back(
              T.Crd[static_cast<size_t>(L + 1)].size());
      }
      T.Val.push_back(Payload);
    }
    // Close the Pos arrays: Pos[L][k] currently holds the *start* of node
    // k's children; append the final end and convert to (start, end) pairs
    // by construction (Pos[L] has one entry per node plus the terminator).
    for (int L = 0; L + 1 < R; ++L)
      T.Pos[static_cast<size_t>(L)].push_back(
          T.Crd[static_cast<size_t>(L + 1)].size());
    return T;
  }

  /// Builds an indicator trie (payload 1) from key rows, merging
  /// duplicates by keeping a single entry.
  static Trie fromKeys(std::vector<std::array<Idx, R>> Keys, V One = V(1)) {
    std::vector<std::pair<std::array<Idx, R>, V>> Rows;
    Rows.reserve(Keys.size());
    for (auto &K : Keys)
      Rows.emplace_back(K, One);
    return fromRows(std::move(Rows), [](V &, const V &) {});
  }

  /// Builds a counting trie from key rows (duplicates sum).
  static Trie fromKeysCounting(std::vector<std::array<Idx, R>> Keys) {
    std::vector<std::pair<std::array<Idx, R>, V>> Rows;
    Rows.reserve(Keys.size());
    for (auto &K : Keys)
      Rows.emplace_back(K, V(1));
    return fromRows(std::move(Rows),
                    [](V &Acc, const V &X) { Acc += X; });
  }

private:
  template <int L, SearchPolicy P>
  auto levelStream(size_t Begin, size_t End) const {
    if constexpr (L == R - 1) {
      const V *ValP = Val.data();
      auto Leaf = [ValP](size_t Q) { return ValP[Q]; };
      return SparseStream<decltype(Leaf), P>(
          Crd[static_cast<size_t>(L)].data(), Begin, End, Leaf);
    } else {
      const size_t *PosP = Pos[static_cast<size_t>(L)].data();
      auto Child = [this, PosP](size_t Q) {
        return levelStream<L + 1, P>(PosP[Q], PosP[Q + 1]);
      };
      return SparseStream<decltype(Child), P>(
          Crd[static_cast<size_t>(L)].data(), Begin, End, Child);
    }
  }

public:
  /// A nested indexed stream over all R levels.
  template <SearchPolicy P = SearchPolicy::Gallop> auto stream() const {
    return levelStream<0, P>(0, Crd[0].size());
  }
};

} // namespace etch

#endif // ETCH_RELATIONAL_TRIE_H

//===- relational/tpch.h - A deterministic scaled-down TPC-H dbgen -*-C++-*-=//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process generator for the TPC-H schema (the data behind
/// Figure 19), replacing the official dbgen tool: same tables, same
/// cardinality ratios per scale factor, uniform keys, dictionary-encoded
/// strings (string payloads are never touched by the queries we reproduce,
/// only their selective predicates, which we model directly — e.g.
/// `p_name LIKE '%green%'` becomes a per-part boolean drawn at the official
/// ~5.4% selectivity). Everything derives deterministically from a seed.
///
/// Cardinalities at scale factor SF (per the TPC-H specification):
///   region 5, nation 25, supplier 10k·SF, customer 150k·SF,
///   part 200k·SF, partsupp 800k·SF (4 suppliers/part),
///   orders 1.5M·SF, lineitem ~6M·SF (1..7 lines/order).
///
//===----------------------------------------------------------------------===//

#ifndef ETCH_RELATIONAL_TPCH_H
#define ETCH_RELATIONAL_TPCH_H

#include "core/krelation.h" // Idx
#include "support/rng.h"

#include <string>
#include <vector>

namespace etch {

/// The TPC-H database as struct-of-array tables. All keys are dense
/// 0-based integers (dictionary encoding); dates are day numbers from
/// 1992-01-01 across the 7-year window 1992..1998.
struct TpchDb {
  // region(r_regionkey, r_name): 5 rows; region 2 plays "ASIA".
  std::vector<std::string> RegionName;

  // nation(n_nationkey, n_regionkey, n_name): 25 rows.
  std::vector<Idx> NationRegion;
  std::vector<std::string> NationName;

  // supplier(s_suppkey, s_nationkey).
  std::vector<Idx> SuppNation;

  // customer(c_custkey, c_nationkey).
  std::vector<Idx> CustNation;

  // part(p_partkey, p_green): whether p_name contains "green" (~5.4%).
  std::vector<uint8_t> PartGreen;

  // partsupp(ps_partkey, ps_suppkey, ps_supplycost): 4 rows per part.
  std::vector<Idx> PsPart, PsSupp;
  std::vector<double> PsSupplyCost;

  // orders(o_orderkey, o_custkey, o_orderdate).
  std::vector<Idx> OrdCust;
  std::vector<Idx> OrdDate; ///< Days since 1992-01-01, in [0, 7*365).

  // lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity,
  //          l_extendedprice, l_discount).
  std::vector<Idx> LiOrder, LiPart, LiSupp;
  std::vector<double> LiQuantity, LiExtendedPrice, LiDiscount;

  size_t numSuppliers() const { return SuppNation.size(); }
  size_t numCustomers() const { return CustNation.size(); }
  size_t numParts() const { return PartGreen.size(); }
  size_t numOrders() const { return OrdCust.size(); }
  size_t numLineitems() const { return LiOrder.size(); }

  /// Total row count across the joined tables (the paper quotes "7.7 and
  /// 8.5 million rows" for Q5/Q9 at SF=1).
  size_t totalRows() const;

  /// The year (1992..1998) of an order date.
  static int yearOfDate(Idx Days) { return 1992 + static_cast<int>(Days / 365); }

  /// Day-number bounds of the Q5 window [1994-01-01, 1995-01-01).
  static Idx q5DateLo() { return 2 * 365; }
  static Idx q5DateHi() { return 3 * 365; }

  /// The "ASIA" region key.
  static Idx asiaRegion() { return 2; }
};

/// Generates the database at \p ScaleFactor (1.0 = the official 1GB scale;
/// laptop-scale runs use 0.005..0.1) from \p Seed.
TpchDb generateTpch(double ScaleFactor, uint64_t Seed = 0x7c9d);

} // namespace etch

#endif // ETCH_RELATIONAL_TPCH_H

//===- bench/bench_formats.cpp - Dense vs hashed group-by sweep -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The {key_density} sweep behind DESIGN.md row 10: a fixed accumulation
// stream (~2M adds over 8K distinct groups) while the key space grows from
// dense (every key in use) to 2^40-sparse. The dense group-by layout pays
// O(key space) memory and zero-fill before the first add; the hashed
// layout (formats/levels.h) pays O(distinct groups) however sparse the
// keys. Rows record wall-clock and resident bytes; dense rows stop at the
// MaxDenseGroupByExtent guard — beyond it the legacy layout is a loud
// error, not a silent 8 GiB allocation. A final row times the TPC-H
// revenue-by-sparse-customer query end to end on the auto-selecting
// GroupBy.
//
//===----------------------------------------------------------------------===//

#include "relational/groupby.h"
#include "relational/queries.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace etch;

namespace {

/// Distinct keys spread over a power-of-two key space: multiplication by
/// an odd constant is a bijection mod 2^k, so the first Groups images are
/// distinct and scattered.
std::vector<Idx> spreadKeys(size_t Groups, Idx Extent) {
  std::vector<Idx> Keys(Groups);
  for (size_t I = 0; I < Groups; ++I)
    Keys[I] = static_cast<Idx>((I * 0x9E3779B1ULL) &
                               static_cast<uint64_t>(Extent - 1));
  return Keys;
}

std::string fmtMem(size_t Bytes) {
  char Buf[32];
  if (Bytes >= (size_t(1) << 20))
    std::snprintf(Buf, sizeof(Buf), "%.1fMiB",
                  static_cast<double>(Bytes) / (1 << 20));
  else
    std::snprintf(Buf, sizeof(Buf), "%.1fKiB",
                  static_cast<double>(Bytes) / (1 << 10));
  return Buf;
}

std::string fmtDensity(size_t Groups, Idx Extent) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3g",
                static_cast<double>(Groups) / static_cast<double>(Extent));
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  BenchJson J;

  constexpr size_t Groups = size_t(1) << 13; // 8192 distinct keys
  constexpr size_t Adds = size_t(1) << 21;   // ~2M accumulations

  std::puts("=== key_density: group-by layout vs key-space sparsity ===");
  std::printf("(%zu distinct groups, %zu adds; dense stops at the "
              "MaxDenseGroupByExtent guard)\n\n",
              Groups, Adds);

  ResultTable T({"extent", "density", "layout", "ms", "memory"});
  for (int LogExtent : {13, 16, 20, 26, 33, 40}) {
    Idx Extent = Idx(1) << LogExtent;
    std::vector<Idx> Keys = spreadKeys(Groups, Extent);
    // The add sequence is precomputed so the timed region is pure
    // accumulation (same instruction stream for both layouts).
    std::vector<Idx> AddKeys(Adds);
    uint64_t State = 0x243F6A8885A308D3ULL;
    for (size_t A = 0; A < Adds; ++A) {
      State = State * 6364136223846793005ULL + 1442695040888963407ULL;
      AddKeys[A] = Keys[(State >> 33) % Groups];
    }
    std::string Ext = "2^" + std::to_string(LogExtent);
    std::string Density = fmtDensity(Groups, Extent);
    volatile double Sink = 0.0;

    if (Extent <= MaxDenseGroupByExtent) {
      double Sec = timeBest(
          [&] {
            DenseGroupBy<double> G(Extent);
            for (size_t A = 0; A < Adds; ++A)
              G.add(AddKeys[A], 1.0);
            Sink = G.slot(Keys[0]);
          },
          O.Reps);
      DenseGroupBy<double> G(Extent);
      T.addRow({Ext, Density, "dense", ResultTable::num(Sec * 1e3),
                fmtMem(G.memoryBytes())});
      J.add("key_density",
            "layout=dense;extent=" + Ext + ";density=" + Density +
                ";mem=" + fmtMem(G.memoryBytes()),
            1, Sec);
    } else {
      T.addRow({Ext, Density, "dense", "guarded", "-"});
    }

    double Sec = timeBest(
        [&] {
          HashedGroupBy<double> G(Extent, Groups);
          for (size_t A = 0; A < Adds; ++A)
            G.add(AddKeys[A], 1.0);
          Sink = G.slot(Keys[0]);
        },
        O.Reps);
    HashedGroupBy<double> G(Extent, Groups);
    for (size_t I = 0; I < Groups; ++I)
      G.add(Keys[I], 1.0);
    T.addRow({Ext, Density, "hashed", ResultTable::num(Sec * 1e3),
              fmtMem(G.memoryBytes())});
    J.add("key_density",
          "layout=hashed;extent=" + Ext + ";density=" + Density +
              ";mem=" + fmtMem(G.memoryBytes()),
          1, Sec);
    (void)Sink;
  }
  T.print();

  std::puts("\n=== tpch_revenue_sparsekey: auto-selected group-by ===");
  TpchDb Db = generateTpch(0.05);
  volatile double Sink = 0.0;
  double Sec = timeBest([&] { Sink = revenueBySparseKey(Db)[0].second; },
                        O.Reps);
  (void)Sink;
  std::printf("revenue over 2^40 customer-id space: %.3f ms (hashed pick)\n",
              Sec * 1e3);
  J.add("tpch_revenue_sparsekey", "layout=groupby(auto:hashed);keyspace=2^40",
        1, Sec);

  if (!O.JsonPath.empty() && !J.writeFile(O.JsonPath))
    return 1;
  return 0;
}

//===- bench/bench_fig19_tpch.cpp - Figure 19: TPC-H Q5 and Q9 -----------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 19: TPC-H queries 5 and 9 across scale factors on the
// three execution models of Figure 18 — fused indexed streams (Etch),
// pairwise vectorised hash joins (the DuckDB model), and tuple-at-a-time
// index nested loops (the SQLite model). The paper reports Etch at least
// 24x over SQLite and ~1.6x over DuckDB across scales.
//
// Times cover query execution over pre-loaded, pre-indexed data (the
// paper's methodology: data in memory, queries prepared, single thread).
// Index/trie build time is reported separately for transparency.
//
//===----------------------------------------------------------------------===//

#include "relational/prepared.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>
#include <numeric>

using namespace etch;

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  BenchJson J;
  std::puts("=== Figure 18: systems under comparison ===");
  ResultTable Sys({"system", "execution model", "data model"});
  Sys.addRow({"duckdb-like", "interpreted (vectorized)", "column-based"});
  Sys.addRow({"sqlite-like", "interpreted (tuple-at-a-time)", "row-based"});
  Sys.addRow({"etch (fused)", "compiled (C++ -O2)", "column-based"});
  Sys.print();

  std::puts("\n=== Figure 19: TPC-H Q5 / Q9 across scale factors ===");
  std::puts("(paper: etch >= 24x over SQLite, ~1.6x over DuckDB)\n");

  ResultTable T({"query", "SF", "rows", "etch_ms", "duckdb_ms", "sqlite_ms",
                 "vs_duckdb", "vs_sqlite"});
  for (double SF : {0.01, 0.02, 0.05, 0.1}) {
    TpchDb Db = generateTpch(SF);
    // Index building happens outside the timed region (the paper loads
    // data and creates indexes before timing prepared queries).
    auto P5 = q5Prepare(Db);
    auto P9 = q9Prepare(Db);
    volatile double Sink = 0.0;

    double E5 = timeBest([&] { Sink = q5Fused(Db, *P5)[10]; }, O.Reps);
    double C5 = timeBest([&] { Sink = q5Columnar(Db)[10]; }, O.Reps);
    double R5 = timeBest([&] { Sink = q5RowStore(Db, *P5)[10]; }, O.Reps);
    std::string Sf = ResultTable::num(SF, 3);
    J.add("fig19_tpch", "query=Q5;sf=" + Sf + ";engine=etch", 1, E5);
    J.add("fig19_tpch", "query=Q5;sf=" + Sf + ";engine=duckdb-like", 1, C5);
    J.add("fig19_tpch", "query=Q5;sf=" + Sf + ";engine=sqlite-like", 1, R5);
    T.addRow({"Q5", ResultTable::num(SF, 3),
              ResultTable::num(static_cast<int64_t>(Db.totalRows())),
              ResultTable::num(E5 * 1e3), ResultTable::num(C5 * 1e3),
              ResultTable::num(R5 * 1e3), ResultTable::num(C5 / E5, 1),
              ResultTable::num(R5 / E5, 1)});

    double E9 = timeBest([&] { Sink = q9Fused(Db, *P9)[0]; }, O.Reps);
    double C9 = timeBest([&] { Sink = q9Columnar(Db)[0]; }, O.Reps);
    double R9 = timeBest([&] { Sink = q9RowStore(Db, *P9)[0]; }, O.Reps);
    J.add("fig19_tpch", "query=Q9;sf=" + Sf + ";engine=etch", 1, E9);
    J.add("fig19_tpch", "query=Q9;sf=" + Sf + ";engine=duckdb-like", 1, C9);
    J.add("fig19_tpch", "query=Q9;sf=" + Sf + ";engine=sqlite-like", 1, R9);
    T.addRow({"Q9", ResultTable::num(SF, 3),
              ResultTable::num(static_cast<int64_t>(Db.totalRows())),
              ResultTable::num(E9 * 1e3), ResultTable::num(C9 * 1e3),
              ResultTable::num(R9 * 1e3), ResultTable::num(C9 / E9, 1),
              ResultTable::num(R9 / E9, 1)});
    (void)Sink;
  }
  T.print();
  if (!O.JsonPath.empty() && !J.writeFile(O.JsonPath))
    return 1;
  return 0;
}

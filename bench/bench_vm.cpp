//===- bench/bench_vm.cpp - VM backend wall-clock comparison --------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Times the three executors for compiled P programs — the tree-walking
// VM, the register-allocated bytecode VM, and the JIT-to-native backend —
// on the Fig. 2 triple product, an SpMV contraction, and the TPC-H
// revenue query, at O0 and O2, next to the fused template-stream
// implementation of the same contraction. Every executor pair is checked
// for bit-identical outputs (and, via a step-counting kernel, identical
// step counts) before its timings are reported; disagreement is a hard
// failure (nonzero exit), so the CI smoke run doubles as a parity check.
//
// The native backend reports three configs per program: `cold` (compile
// into a fresh cache directory plus one dispatch — the first-query
// latency), `jit_compile_seconds` (the compile alone, for amortization
// math), and `cachehit` (steady-state dispatch through a prepared
// NativeCall, the number the ≥3x-vs-bytecode claim is about). When the
// machine has no usable C compiler the native rows are skipped with a
// note; the tree/bytecode rows still run.
//
//===----------------------------------------------------------------------===//

#include "compiler/bytecode.h"
#include "compiler/frontend.h"
#include "compiler/jit.h"
#include "formats/random.h"
#include "relational/tpch.h"
#include "streams/combinators.h"
#include "streams/eval.h"
#include "streams/primitives.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>

#include <unistd.h>

using namespace etch;

namespace {

Attr attrI() { return Attr::named("bvm_i"); }
Attr attrJ() { return Attr::named("bvm_j"); }

bool bitsEq(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// One contraction to benchmark: how to compile it (per opt level), the
/// memory its inputs live in, where the scalar result lands, and the fused
/// template-stream implementation of the same computation.
struct VmBench {
  std::string Name;
  std::function<PRef(int Opt)> Compile;
  std::function<void(VmMemory &)> BindInputs;
  std::string OutVar;
  std::function<double()> Streams;
};

VmBench fig2Bench() {
  // Figure 2's three-way sparse vector product, scaled up: supports at
  // multiples of 2, 3, and 5, so the intersection (multiples of 30) is
  // nonempty and deterministic.
  const Idx N = 240'000;
  auto Mk = [&](Idx Step, double Base) {
    SparseVector<double> V(N);
    for (Idx I = 0; I < N; I += Step)
      V.push(I, Base + 1e-6 * static_cast<double>(I % 97));
    return V;
  };
  auto X = std::make_shared<SparseVector<double>>(Mk(2, 1.5));
  auto Y = std::make_shared<SparseVector<double>>(Mk(3, 2.25));
  auto Z = std::make_shared<SparseVector<double>>(Mk(5, 0.75));

  VmBench B;
  B.Name = "fig2_triple";
  B.OutVar = "out";
  B.Compile = [](int Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrI(), 240'000);
    Ctx.bind(sparseVecBinding("x", attrI()));
    Ctx.bind(sparseVecBinding("y", attrI()));
    Ctx.bind(sparseVecBinding("z", attrI()));
    return compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
  };
  B.BindInputs = [X, Y, Z](VmMemory &M) {
    bindSparseVector(M, "x", *X);
    bindSparseVector(M, "y", *Y);
    bindSparseVector(M, "z", *Z);
  };
  B.Streams = [X, Y, Z] {
    return sumAll<F64Semiring>(mulStreams<F64Semiring>(
        mulStreams<F64Semiring>(X->stream(), Y->stream()), Z->stream()));
  };
  return B;
}

VmBench spmvBench() {
  // Fully contracted SpMV, Σ_i Σ_j A(i,j)·x(j): a CSR operand (dense row
  // level over compressed columns) against a sparse vector.
  const Idx N = 2'000;
  Rng R(41);
  auto A = std::make_shared<CsrMatrix<double>>(randomCsr(R, N, N, 60'000));
  auto X = std::make_shared<SparseVector<double>>(
      randomSparseVector(R, N, 1'000));

  VmBench B;
  B.Name = "spmv_total";
  B.OutVar = "out";
  B.Compile = [N](int Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrI(), N);
    Ctx.setDim(attrJ(), N);
    Ctx.bind(csrBinding("A", attrI(), attrJ()));
    Ctx.bind(sparseVecBinding("x", attrJ()));
    std::string Err;
    ExprPtr Prod = mulExpand(Expr::var("A"), Expr::var("x"), Ctx.types(),
                             &Err);
    ETCH_ASSERT(Prod, "mulExpand failed");
    return compileFullContraction(Ctx, Prod, "out");
  };
  B.BindInputs = [A, X](VmMemory &M) {
    bindCsr(M, "A", *A);
    bindSparseVector(M, "x", *X);
  };
  B.Streams = [A, X] {
    // map (·x) over the rows, then one big Σ: the same loop nest the
    // compiler emits, expressed with the template combinators.
    auto Rows = mapStream(A->stream(), [&](auto Row) {
      return mulStreams<F64Semiring>(std::move(Row), X->stream());
    });
    return sumAll<F64Semiring>(std::move(Rows));
  };
  return B;
}

VmBench tpchBench() {
  // The revenue query of the pass-pipeline tests, at a larger scale
  // factor: Σ_o Σ_l L(o,l)·f(o) with L the lineitem tensor (extendedprice
  // · (1 − discount) keyed by order → line position) and f the 0/1 filter
  // of orders in the Q5 date window.
  TpchDb Db = generateTpch(0.02);
  const Idx NumOrders = static_cast<Idx>(Db.numOrders());

  std::vector<CooEntry<double>> Coo;
  {
    std::vector<Idx> NextLine(static_cast<size_t>(NumOrders), 0);
    for (size_t K = 0; K < Db.numLineitems(); ++K) {
      Idx O = Db.LiOrder[K];
      Coo.push_back({O, NextLine[static_cast<size_t>(O)]++,
                     Db.LiExtendedPrice[K] * (1.0 - Db.LiDiscount[K])});
    }
  }
  auto L = std::make_shared<CsrMatrix<double>>(
      CsrMatrix<double>::fromCoo(NumOrders, 8, std::move(Coo)));

  auto F = std::make_shared<SparseVector<double>>(NumOrders);
  for (Idx O = 0; O < NumOrders; ++O)
    if (Db.OrdDate[static_cast<size_t>(O)] >= TpchDb::q5DateLo() &&
        Db.OrdDate[static_cast<size_t>(O)] < TpchDb::q5DateHi())
      F->push(O, 1.0);

  VmBench B;
  B.Name = "tpch_revenue";
  B.OutVar = "revenue";
  B.Compile = [NumOrders](int Opt) {
    LowerCtx Ctx;
    Ctx.OptLevel = Opt;
    Ctx.setDim(attrI(), NumOrders);
    Ctx.setDim(attrJ(), 8);
    Ctx.bind(csrBinding("L", attrI(), attrJ()));
    Ctx.bind(sparseVecBinding("f", attrI()));
    std::string Err;
    ExprPtr Prod = mulExpand(Expr::var("L"), Expr::var("f"), Ctx.types(),
                             &Err);
    ETCH_ASSERT(Prod, "mulExpand failed");
    return compileFullContraction(Ctx, Prod, "revenue");
  };
  B.BindInputs = [L, F](VmMemory &M) {
    bindCsr(M, "L", *L);
    bindSparseVector(M, "f", *F);
  };
  B.Streams = [L, F] {
    // f expanded across the line level (↑_l), then a level-wise product
    // with L: the order-level intersection skips whole filtered-out rows.
    auto F2 = mapStream(F->stream(),
                        [](double V) { return repeatUnbounded(V); });
    return sumAll<F64Semiring>(
        mulStreams<F64Semiring>(std::move(F2), L->stream()));
  };
  return B;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchArgs(Argc, Argv);
  std::puts("=== Compiled-program executors: tree, bytecode, native ===");
  std::puts("(same P program, same step count, bit-identical outputs)\n");

  const bool HaveJit = jitToolchain().Available;
  if (HaveJit)
    std::printf("native backend: %s (%s)\n\n", jitToolchain().Cmd.c_str(),
                jitToolchain().VersionLine.c_str());
  else
    std::printf("native backend: skipped — no usable C compiler (%s)\n\n",
                jitToolchain().Diag.c_str());

  ResultTable T({"program", "opt", "steps", "tree_ms", "bytecode_ms",
                 "native_ms", "nat_x_bc", "jit_ms", "streams_ms"});
  BenchJson J;
  bool Failed = false;

  for (const VmBench &B : {fig2Bench(), spmvBench(), tpchBench()}) {
    double StreamsSec = timeBest([&] { (void)B.Streams(); }, Opts.Reps);
    double StreamsVal = B.Streams();
    J.add("vm_" + B.Name, "backend=streams", 1, StreamsSec);

    for (int Opt : {0, 2}) {
      PRef Prog = B.Compile(Opt);
      BytecodeProgram BC = compileBytecode(Prog);
      if (!BC.ok()) {
        std::fprintf(stderr, "%s/O%d: bytecode compile error: %s\n",
                     B.Name.c_str(), Opt, BC.CompileError.c_str());
        Failed = true;
        continue;
      }

      // Parity first, on fresh memories: identical steps, identical bits.
      VmMemory TreeM, BcM;
      B.BindInputs(TreeM);
      B.BindInputs(BcM);
      VmRunResult TreeR = vmRun(Prog, TreeM);
      VmRunResult BcR = bytecodeRun(BC, BcM);
      if (TreeR.Error || BcR.Error || TreeR.Steps != BcR.Steps) {
        std::fprintf(stderr, "%s/O%d: run mismatch (steps %lld vs %lld)\n",
                     B.Name.c_str(), Opt,
                     static_cast<long long>(TreeR.Steps),
                     static_cast<long long>(BcR.Steps));
        Failed = true;
        continue;
      }
      double TreeVal = std::get<double>(*TreeM.getScalar(B.OutVar));
      double BcVal = std::get<double>(*BcM.getScalar(B.OutVar));
      if (!bitsEq(TreeVal, BcVal)) {
        std::fprintf(stderr, "%s/O%d: output mismatch %.17g vs %.17g\n",
                     B.Name.c_str(), Opt, TreeVal, BcVal);
        Failed = true;
        continue;
      }
      if (std::abs(TreeVal - StreamsVal) >
          1e-9 * std::max(1.0, std::abs(StreamsVal))) {
        std::fprintf(stderr, "%s/O%d: compiled %.17g vs streams %.17g\n",
                     B.Name.c_str(), Opt, TreeVal, StreamsVal);
        Failed = true;
        continue;
      }

      // Timed runs re-execute against the same memory: the program
      // re-declares its locals and accumulator every run, and inputs are
      // read-only, so repetition is idempotent.
      double TreeSec = timeBest([&] { (void)vmRun(Prog, TreeM); },
                                Opts.Reps);
      double BcSec = timeBest([&] { (void)bytecodeRun(BC, BcM); },
                              Opts.Reps);
      std::string Cfg = "opt=O" + std::to_string(Opt);
      J.add("vm_" + B.Name, "backend=tree;" + Cfg, 1, TreeSec);
      J.add("vm_" + B.Name, "backend=bytecode;" + Cfg, 1, BcSec);

      // Native backend. Cold numbers need a cache that is genuinely cold:
      // a throwaway directory (removed afterwards) and a flushed
      // in-process handle map. The later kernels are keyed by content, so
      // dropping the directory never invalidates the handles we hold.
      double NatSec = 0, OneSec = 0, JitSec = 0;
      bool HaveNat = false;
      if (HaveJit) {
        namespace fs = std::filesystem;
        std::string ColdDir = jitCacheDir() + "/bench-cold-" +
                              std::to_string(static_cast<long long>(
                                  getpid())) +
                              "-" + B.Name + "-O" + std::to_string(Opt);
        JitOptions ColdJO;
        ColdJO.CacheDir = ColdDir;
        jitResetCacheStatsForTest();
        std::string Err;
        Timer CompileT;
        NativeKernelRef KFast = jitCompile(Prog, ColdJO, &Err);
        JitSec = CompileT.seconds();
        JitOptions StepJO = ColdJO;
        StepJO.CountSteps = true;
        NativeKernelRef KStep =
            KFast ? jitCompile(Prog, StepJO, &Err) : nullptr;
        std::error_code Ec;
        fs::remove_all(ColdDir, Ec);
        if (!KFast || !KStep) {
          std::fprintf(stderr, "%s/O%d: jit compile error: %s\n",
                       B.Name.c_str(), Opt, Err.c_str());
          Failed = true;
          continue;
        }

        // Parity gate: the counting kernel must match the tree VM's step
        // count and produce bit-identical output.
        VmMemory NatM;
        B.BindInputs(NatM);
        VmRunResult NatR = KStep->run(NatM);
        double NatVal =
            NatR.ok() ? std::get<double>(*NatM.getScalar(B.OutVar)) : 0;
        if (NatR.Error || NatR.Steps != TreeR.Steps ||
            !bitsEq(NatVal, TreeVal)) {
          std::fprintf(stderr,
                       "%s/O%d: native mismatch (steps %lld vs %lld, "
                       "out %.17g vs %.17g)\n",
                       B.Name.c_str(), Opt,
                       static_cast<long long>(TreeR.Steps),
                       static_cast<long long>(NatR.Steps), TreeVal, NatVal);
          Failed = true;
          continue;
        }

        // Steady state: marshal once, dispatch per rep. The first invoke
        // is also the output parity check for the fast kernel.
        NativeCall Call(KFast);
        VmMemory BindM;
        B.BindInputs(BindM);
        VmRunResult CallR;
        if (!Call.bind(BindM, &Err) || (CallR = Call.invoke()).Error) {
          std::fprintf(stderr, "%s/O%d: native call error: %s\n",
                       B.Name.c_str(), Opt,
                       CallR.Error ? CallR.Error->c_str() : Err.c_str());
          Failed = true;
          continue;
        }
        double CallVal = std::get<double>(*Call.scalar(B.OutVar));
        if (!bitsEq(CallVal, TreeVal)) {
          std::fprintf(stderr, "%s/O%d: native output mismatch %.17g vs "
                       "%.17g\n",
                       B.Name.c_str(), Opt, TreeVal, CallVal);
          Failed = true;
          continue;
        }
        NatSec = timeBest([&] { (void)Call.invoke(); }, Opts.Reps);
        // The full-contract number (marshal a VmMemory every call), for
        // an honest comparison against bytecodeRun's per-call cost.
        VmMemory OneM;
        B.BindInputs(OneM);
        (void)KFast->run(OneM); // warm: later runs see written-back state
        OneSec = timeBest([&] { (void)KFast->run(OneM); }, Opts.Reps);
        HaveNat = true;

        J.add("vm_" + B.Name, "backend=native;" + Cfg + ";config=cachehit",
              1, NatSec);
        J.add("vm_" + B.Name, "backend=native;" + Cfg + ";config=oneshot",
              1, OneSec);
        J.add("vm_" + B.Name, "backend=native;" + Cfg + ";config=cold", 1,
              JitSec + OneSec);
        J.add("vm_" + B.Name,
              "backend=native;" + Cfg + ";config=jit_compile_seconds", 1,
              JitSec);
      }

      T.addRow({B.Name, "O" + std::to_string(Opt),
                ResultTable::num(TreeR.Steps),
                ResultTable::num(TreeSec * 1e3),
                ResultTable::num(BcSec * 1e3),
                HaveNat ? ResultTable::num(NatSec * 1e3) : "-",
                HaveNat ? ResultTable::num(BcSec / NatSec, 2) : "-",
                HaveNat ? ResultTable::num(JitSec * 1e3) : "-",
                ResultTable::num(StreamsSec * 1e3)});
    }
  }
  T.print();

  if (!Opts.JsonPath.empty() && !J.writeFile(Opts.JsonPath))
    return 1;
  return Failed ? 1 : 0;
}

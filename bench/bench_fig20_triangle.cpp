//===- bench/bench_fig20_triangle.cpp - Figure 20: triangle query --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 20: the triangle query on the worst-case family
// R = S = T = ({0} x [n]) ∪ ([n] x {0}). The fused indexed-stream plan
// (worst-case optimal, Section 5.4.2) scales linearly in n; both pairwise
// baselines scale quadratically — the columnar engine by materialising the
// Θ(n²) intermediate, the row store by probing Θ(n²) tuples. The last
// column reports the growth exponent between consecutive sizes
// (log(t2/t1) / log(n2/n1)): ~1 for fused, ~2 for the baselines.
//
//===----------------------------------------------------------------------===//

#include "relational/prepared.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cmath>
#include <cstdio>

using namespace etch;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchArgs(Argc, Argv);
  std::puts("=== Figure 20: triangle query on the worst-case family ===");
  std::puts("(paper: fused scales linearly; SQLite/DuckDB quadratically)\n");

  ResultTable T({"n", "triangles", "etch_ms", "duckdb_ms", "sqlite_ms",
                 "etch_slope", "duckdb_slope", "sqlite_slope"});
  // The quadratic baselines are capped to keep the run short (and, for the
  // columnar engine, to bound the Θ(n²) materialised intermediate).
  const Idx ColumnarCap = 1 << 12;
  const Idx RowStoreCap = 1 << 14;
  double PrevE = 0, PrevC = 0, PrevR = 0;
  Idx PrevN = 0;
  for (Idx N : {Idx(1) << 10, Idx(1) << 11, Idx(1) << 12, Idx(1) << 13,
                Idx(1) << 14, Idx(1) << 16, Idx(1) << 18}) {
    EdgeList G = triangleWorstCase(N);
    auto P = trianglePrepare(G, G, G);
    volatile int64_t Sink = 0;

    double E = timeBest([&] { Sink = triangleFused(*P); }, 2);
    double R = -1.0;
    if (N <= RowStoreCap)
      R = timeBest([&] { Sink = triangleRowStore(G, G, G, *P); }, 1);
    double C = -1.0;
    if (N <= ColumnarCap)
      C = timeBest([&] { Sink = triangleColumnar(G, G, G); }, 1);
    int64_t Count = triangleFused(*P);
    (void)Sink;

    auto Slope = [&](double Cur, double Prev) {
      if (PrevN == 0 || Prev <= 0 || Cur <= 0)
        return std::string("-");
      return ResultTable::num(
          std::log(Cur / Prev) /
              std::log(static_cast<double>(N) / static_cast<double>(PrevN)),
          2);
    };
    T.addRow({ResultTable::num(static_cast<int64_t>(N)),
              ResultTable::num(Count), ResultTable::num(E * 1e3),
              C < 0 ? "skipped" : ResultTable::num(C * 1e3),
              R < 0 ? "skipped" : ResultTable::num(R * 1e3),
              Slope(E, PrevE), Slope(C, PrevC), Slope(R, PrevR)});
    PrevE = E;
    PrevC = C;
    PrevR = R;
    PrevN = N;
  }
  T.print();

  // Thread sweep of the chunk-parallel fused plan (outermost a level
  // partitioned by nnz; see streams/parallel.h). The count is identical to
  // the serial plan for every configuration (integer semiring).
  std::puts("\n=== Parallel fused triangle thread sweep ===");
  ResultTable TP({"n", "threads", "etch_ms", "speedup_vs_serial"});
  BenchJson J;
  for (Idx N : {Idx(1) << 14, Idx(1) << 18}) {
    EdgeList G = triangleWorstCase(N);
    auto P = trianglePrepare(G, G, G);
    volatile int64_t Sink = 0;
    double Serial = timeBest([&] { Sink = triangleFused(*P); }, 2);
    J.add("triangle", "n=" + std::to_string(N) + ";serial", 1, Serial);
    for (int Threads : Opts.Threads) {
      ThreadPool Pool(static_cast<unsigned>(Threads));
      double Par =
          timeBest([&] { Sink = triangleFusedParallel(Pool, *P); }, 2);
      J.add("triangle", "n=" + std::to_string(N), Threads, Par);
      TP.addRow({ResultTable::num(static_cast<int64_t>(N)),
                 ResultTable::num(int64_t{Threads}),
                 ResultTable::num(Par * 1e3),
                 ResultTable::num(Serial / Par, 2)});
    }
    (void)Sink;
  }
  TP.print();

  if (!Opts.JsonPath.empty() && !J.writeFile(Opts.JsonPath))
    return 1;
  return 0;
}

//===- bench/bench_tiles.cpp - Planner-scheduled kernel sweep -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Sweeps the {kernel, tile, simd} space of the planner-scheduled kernel
// variants (baselines/etch_kernels.h, relational/queries.h) against their
// serial stream-combinator originals, and checks the planner's schedule
// choice (planner/indexing.h) against the measured sweep. Every timed
// configuration is gated on *bit-identical* output vs the serial kernel —
// a mismatch makes the run exit nonzero, so no speedup number from a
// result-changing schedule can ever land in the tracked JSON.
//
// Rows (bench "tiles", config "<kernel>/<variant>"):
//   spmv    — stream serial, raw untiled, column tiles {1024, 2048, 8192}
//   matmul  — stream serial (lin-comb mmul), raw untiled, k tiles
//   mttkrp  — stream serial, raw scalar, raw simd
//   triangle— stream serial, raw gallop (integer semiring; outside the
//             speedup gate, listed for the schedule's completeness)
//
// The planner row re-times the configuration chooseSchedule picked and
// carries the plan's total and access-pattern cost next to the measured
// time. The summary reports how many of {spmv, matmul, mttkrp} meet the
// 1.5x single-core target at the planner-selected schedule.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "planner/indexing.h"
#include "planner/plan.h"
#include "relational/prepared.h"
#include "support/benchjson.h"
#include "support/simd.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>
#include <cstring>

using namespace etch;

namespace {

int Failures = 0;

void checkBits(bool Same, const char *Kernel, const std::string &Config) {
  if (Same)
    return;
  std::fprintf(stderr, "BIT MISMATCH: %s/%s differs from serial\n", Kernel,
               Config.c_str());
  ++Failures;
}

bool sameBits(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0;
}

bool sameCsr(const CsrMatrix<double> &A, const CsrMatrix<double> &B) {
  return A.Pos == B.Pos && A.Crd == B.Crd && sameBits(A.Val, B.Val);
}

/// Prints the plan's EXPLAIN and the schedule decision for one kernel.
KernelSchedule explainSchedule(const char *Name, const PlanQuery &Q,
                               const Plan &P) {
  IndexingInfo Info = analyzeIndexing(Q, P);
  KernelSchedule KS = chooseSchedule(Q, P, Info);
  std::printf("--- %s: planner EXPLAIN ---\n%sschedule: %s\n\n", Name,
              P.explain(Q).c_str(), KS.Reason.c_str());
  return KS;
}

void benchSpmv(BenchJson &Json, int Reps, ResultTable &Summary,
               int &GatePasses) {
  // Sized so column tiling has real reuse to harvest: x is 256 MiB (past a
  // large shared L3, and the 512 MiB Crd/Val stream keeps evicting it), and
  // 32M nonzeros over 2^25 columns put ~8 hits on every 64-byte line of x.
  // Untiled, those hits are spread across the whole pass, so each one pays
  // DRAM latency; a 2048-column tile takes them all against an L1-resident
  // 16 KiB slice. Rows are few relative to nonzeros (125k nnz/row), so the
  // blocked variant's rows x blocks cursor scan (~4M visits) is noise and
  // each row's Crd/Val stay a single forward stream.
  const Idx Rows = 256;
  const Idx Cols = Idx(1) << 25;
  const size_t Nnz = 32'000'000;
  Rng R(71);
  auto A = randomCsr(R, Rows, Cols, Nnz);
  auto X = randomDenseVector(R, Cols);

  Attr I = Attr::named("tl_i"), J = Attr::named("tl_j");
  TypeContext Ctx;
  Ctx["A"] = Shape{I, J};
  Ctx["x"] = Shape{J};
  ExprPtr E = Expr::sum(J, mulExpand(Expr::var("A"), Expr::var("x"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, I, J);
  Stats["x"] = statsOfDenseVector("x", X, J);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  auto Best = Q ? bestPlan(*Q) : std::nullopt;
  if (!Best) {
    std::fprintf(stderr, "spmv: planning failed: %s\n", Err.c_str());
    ++Failures;
    return;
  }
  KernelSchedule KS = explainSchedule("spmv", *Q, *Best);

  DenseVector<double> Ref(Rows), Y(Rows);
  kernels::spmv(A, X, Ref);
  double Serial = timeBest([&] { kernels::spmv(A, X, Ref); }, Reps);
  Json.add("tiles", "spmv/serial", 1, Serial);

  auto Run = [&](const std::string &Cfg, int64_t Tile) {
    kernels::spmvTiled(A, X, Y, Tile);
    checkBits(sameBits(Y.Val, Ref.Val), "spmv", Cfg);
    double T = timeBest([&] { kernels::spmvTiled(A, X, Y, Tile); }, Reps);
    Json.add("tiles", "spmv/" + Cfg, 1, T);
    return T;
  };
  Run("raw", 0);
  for (int64_t Tile : {int64_t(1024), int64_t(2048), int64_t(8192)})
    Run("tile=" + std::to_string(Tile), Tile);

  std::string PCfg = KS.Tiled ? "tile=" + std::to_string(KS.ColTile) : "raw";
  kernels::spmvTiled(A, X, Y, KS.Tiled ? KS.ColTile : 0);
  checkBits(sameBits(Y.Val, Ref.Val), "spmv", "planner:" + PCfg);
  double Planner = timeBest(
      [&] { kernels::spmvTiled(A, X, Y, KS.Tiled ? KS.ColTile : 0); }, Reps);
  Json.add("tiles", "spmv/planner:" + PCfg, 1, Planner, Best->cost(),
           Best->AccessCost);
  double Speedup = Serial / Planner;
  GatePasses += Speedup >= 1.5;
  Summary.addRow({"spmv", PCfg, ResultTable::num(Serial * 1e3),
                  ResultTable::num(Planner * 1e3),
                  ResultTable::num(Speedup, 2)});
}

void benchMatmul(BenchJson &Json, int Reps, ResultTable &Summary,
                 int &GatePasses) {
  // The Gustavson workspace is one dense row of C: 2^19 columns = 4 MiB,
  // past L2, and each A row drives ~3M scattered updates into it (750 nnz
  // per A row x 4000 nnz per B row), so the untiled scatter misses
  // constantly while the 2048-column block works in a 16 KiB slice. Few A
  // rows keep the run short without changing the per-row picture.
  Rng R(73);
  auto A = randomCsr(R, 4, 1'000, 3'000);
  auto B = randomCsr(R, 1'000, Idx(1) << 19, 4'000'000);

  Attr I = Attr::named("tl_mi"), J = Attr::named("tl_mj"),
       K = Attr::named("tl_mk");
  TypeContext Ctx;
  Ctx["A"] = Shape{I, J};
  Ctx["B"] = Shape{J, K};
  ExprPtr E = Expr::sum(J, mulExpand(Expr::var("A"), Expr::var("B"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, I, J);
  Stats["B"] = statsOfCsr("B", B, J, K);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  auto Best = Q ? bestPlan(*Q) : std::nullopt;
  if (!Best) {
    std::fprintf(stderr, "matmul: planning failed: %s\n", Err.c_str());
    ++Failures;
    return;
  }
  KernelSchedule KS = explainSchedule("matmul", *Q, *Best);

  auto Ref = kernels::mmul(A, B);
  double Serial = timeBest([&] { auto C = kernels::mmul(A, B); }, Reps);
  Json.add("tiles", "matmul/serial", 1, Serial);

  auto Run = [&](const std::string &Cfg, int64_t Tile) {
    auto C = kernels::mmulTiled(A, B, Tile);
    checkBits(sameCsr(C, Ref), "matmul", Cfg);
    double T =
        timeBest([&] { auto C2 = kernels::mmulTiled(A, B, Tile); }, Reps);
    Json.add("tiles", "matmul/" + Cfg, 1, T);
    return T;
  };
  Run("raw", 0);
  for (int64_t Tile : {int64_t(1024), int64_t(2048), int64_t(8192)})
    Run("tile=" + std::to_string(Tile), Tile);

  std::string PCfg = KS.Tiled ? "tile=" + std::to_string(KS.ColTile) : "raw";
  int64_t PTile = KS.Tiled ? KS.ColTile : 0;
  {
    auto C = kernels::mmulTiled(A, B, PTile);
    checkBits(sameCsr(C, Ref), "matmul", "planner:" + PCfg);
  }
  double Planner =
      timeBest([&] { auto C = kernels::mmulTiled(A, B, PTile); }, Reps);
  Json.add("tiles", "matmul/planner:" + PCfg, 1, Planner, Best->cost(),
           Best->AccessCost);
  double Speedup = Serial / Planner;
  GatePasses += Speedup >= 1.5;
  Summary.addRow({"matmul", PCfg, ResultTable::num(Serial * 1e3),
                  ResultTable::num(Planner * 1e3),
                  ResultTable::num(Speedup, 2)});
}

void benchMttkrp(BenchJson &Json, int Reps, ResultTable &Summary,
                 int &GatePasses) {
  const Idx NI = 2000, NJ = 2000, NK = 2000;
  const int64_t Rank = 64;
  const size_t Nnz = 500'000;
  Rng R(79);
  auto B = randomCsf3(R, NI, NJ, NK, Nnz);
  std::vector<double> C(static_cast<size_t>(NJ * Rank)),
      D(static_cast<size_t>(NK * Rank));
  for (auto &V : C)
    V = randomValue(R);
  for (auto &V : D)
    V = randomValue(R);

  // A(i,j) = Σ_k Σ_l B(i,k,l) · C(k,j) · D(l,j). B's CSF storage pins
  // i < k < l and the untransposable dense factors pin k < j and l < j, so
  // exactly one order is realizable and the schedule choice is about the
  // inner j loop, not the order.
  Attr I = Attr::named("tl_ti"), K = Attr::named("tl_tk"),
       L = Attr::named("tl_tl"), J = Attr::named("tl_tj");
  TypeContext Ctx;
  Ctx["B"] = Shape{I, K, L};
  Ctx["C"] = Shape{K, J};
  Ctx["D"] = Shape{L, J};
  ExprPtr E = Expr::sum(
      K, Expr::sum(L, mulExpand(mulExpand(Expr::var("B"), Expr::var("C"), Ctx),
                                Expr::var("D"), Ctx)));
  std::map<std::string, TensorStats> Stats;
  Stats["B"] = statsOfCsf3("B", B, I, K, L);
  std::vector<Tuple> CT, DT;
  for (Idx Row = 0; Row < NJ; ++Row)
    for (int64_t Col = 0; Col < Rank; ++Col)
      CT.push_back({Row, static_cast<Idx>(Col)});
  for (Idx Row = 0; Row < NK; ++Row)
    for (int64_t Col = 0; Col < Rank; ++Col)
      DT.push_back({Row, static_cast<Idx>(Col)});
  Stats["C"] = statsFromTuples("C", {K, J}, {LevelSpec::Dense, LevelSpec::Dense},
                               {NJ, Rank}, CT);
  Stats["D"] = statsFromTuples("D", {L, J}, {LevelSpec::Dense, LevelSpec::Dense},
                               {NK, Rank}, DT);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  auto Best = Q ? bestPlan(*Q) : std::nullopt;
  if (!Best) {
    std::fprintf(stderr, "mttkrp: planning failed: %s\n", Err.c_str());
    ++Failures;
    return;
  }
  KernelSchedule KS = explainSchedule("mttkrp", *Q, *Best);

  std::vector<double> Ref, Out;
  kernels::mttkrp(B, C, D, Rank, Ref);
  double Serial =
      timeBest([&] { kernels::mttkrp(B, C, D, Rank, Out); }, Reps);
  Json.add("tiles", "mttkrp/serial", 1, Serial);

  auto Run = [&](const std::string &Cfg, bool Simd) {
    kernels::mttkrpTiled(B, C, D, Rank, Out, Simd);
    checkBits(sameBits(Out, Ref), "mttkrp", Cfg);
    double T = timeBest(
        [&] { kernels::mttkrpTiled(B, C, D, Rank, Out, Simd); }, Reps);
    Json.add("tiles", "mttkrp/" + Cfg, 1, T);
    return T;
  };
  Run("scalar", false);
  Run("simd", true);

  std::string PCfg = KS.Simd ? "simd" : "scalar";
  kernels::mttkrpTiled(B, C, D, Rank, Out, KS.Simd);
  checkBits(sameBits(Out, Ref), "mttkrp", "planner:" + PCfg);
  double Planner = timeBest(
      [&] { kernels::mttkrpTiled(B, C, D, Rank, Out, KS.Simd); }, Reps);
  Json.add("tiles", "mttkrp/planner:" + PCfg, 1, Planner, Best->cost(),
           Best->AccessCost);
  double Speedup = Serial / Planner;
  GatePasses += Speedup >= 1.5;
  Summary.addRow({"mttkrp", PCfg, ResultTable::num(Serial * 1e3),
                  ResultTable::num(Planner * 1e3),
                  ResultTable::num(Speedup, 2)});
}

void benchTriangle(BenchJson &Json, int Reps, ResultTable &Summary) {
  const Idx N = Idx(1) << 16;
  EdgeList G = triangleWorstCase(N);
  auto P = trianglePrepare(G, G, G);

  int64_t Ref = triangleFused(*P);
  volatile int64_t Sink = 0;
  double Serial = timeBest([&] { Sink = triangleFused(*P); }, Reps);
  Json.add("tiles", "triangle/serial", 1, Serial);

  int64_t Raw = triangleFusedTiled(*P);
  checkBits(Raw == Ref, "triangle", "raw-gallop");
  double RawT = timeBest([&] { Sink = triangleFusedTiled(*P); }, Reps);
  (void)Sink;
  Json.add("tiles", "triangle/raw-gallop", 1, RawT);
  // Integer semiring: any schedule is exact, so the raw variant is always
  // eligible; it stays outside the 1.5x gate (the gate is about the three
  // fp kernels whose schedules the planner actually varies).
  Summary.addRow({"triangle", "raw-gallop", ResultTable::num(Serial * 1e3),
                  ResultTable::num(RawT * 1e3),
                  ResultTable::num(Serial / RawT, 2)});
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchArgs(Argc, Argv);
  std::printf("=== Planner-scheduled kernels: {kernel, tile, simd} sweep ===\n"
              "(simd compiled in: %s, width %lld)\n\n",
              simdDescription(), static_cast<long long>(simdWidth()));

  BenchJson Json;
  ResultTable Summary(
      {"kernel", "planner_schedule", "serial_ms", "planner_ms", "speedup"});
  int GatePasses = 0;
  benchSpmv(Json, BO.Reps, Summary, GatePasses);
  benchMatmul(Json, BO.Reps, Summary, GatePasses);
  benchMttkrp(Json, BO.Reps, Summary, GatePasses);
  benchTriangle(Json, BO.Reps, Summary);

  std::puts("=== Planner-selected schedule vs serial ===\n");
  Summary.print();
  std::printf("\nspeedup gate (>= 1.5x on >= 2 of {spmv, matmul, mttkrp}): "
              "%d of 3 %s\n",
              GatePasses, GatePasses >= 2 ? "PASS" : "below target");
  if (Failures) {
    std::fprintf(stderr, "\n%d bit-identity failure(s)\n", Failures);
    return 1;
  }
  if (!BO.JsonPath.empty() && !Json.writeFile(BO.JsonPath))
    return 1;
  return 0;
}

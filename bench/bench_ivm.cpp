//===- bench/bench_ivm.cpp - Incremental vs full view refresh -------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// The incremental-view-maintenance amortization story, measured and
// counter-verified. Two identically loaded services ingest the *same*
// append batches; after every batch each must produce current answers
// for two registered query shapes (SpMV total and the A·A self-join):
//
//   - `incremental` registers both shapes as materialized views: a batch
//     folds in through retained delta plans and `readView` answers from
//     the stored value;
//   - `full` answers by re-running the contraction: the append bumped the
//     tensor version, so each round re-plans, re-binds the whole payload,
//     and re-contracts all of it.
//
// The sweep varies the batch size (delta nnz 1 / 16 / 256) on a fixed
// 40k-nnz matrix. Three gates make the run a regression test, not a
// timer:
//
//   * bit-identity — every view reading equals the full service's answer
//     and the driver's own recomputation, bit for bit (integer-valued
//     data, so f64 sums are exact in any association order);
//   * planner-free refreshes — after warmup, the incremental service's
//     PlannerRuns counter must not move across all timed rounds, and
//     every delta dispatch must be a retained-plan hit;
//   * amortization — for small batches (nnz <= 16) the incremental
//     per-round time must beat full recomputation outright.
//
// `--json <path>` writes the tracked rows (bench/results/BENCH_ivm.json).
//
//===----------------------------------------------------------------------===//

#include "serve/service.h"

#include "support/benchjson.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include <unistd.h>

using namespace etch;

namespace {

namespace fs = std::filesystem;

Attr attrI() { return Attr::named("bivm_i"); }
Attr attrJ() { return Attr::named("bivm_j"); }

bool bitsEq(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

constexpr Idx Dim = 2000;
constexpr size_t BaseNnz = 40000;
constexpr int Rounds = 20; ///< Timed batches per (delta, rep).

/// Integer-valued base data: values in 1..4, coordinates random. Every
/// batch updates stored coordinates, so nnz stays put while values grow
/// by small integers — sums remain exact in f64 throughout.
struct Workload {
  std::vector<CooEntry<double>> Coo;
  CsrMatrix<double> A;
  SparseVector<double> X{Dim};

  Workload() {
    Rng R(211);
    for (size_t K = 0; K < BaseNnz; ++K)
      Coo.push_back({static_cast<Idx>(R.nextBelow(Dim)),
                     static_cast<Idx>(R.nextBelow(Dim)),
                     1.0 + static_cast<double>(R.nextBelow(4))});
    A = CsrMatrix<double>::fromCoo(Dim, Dim, Coo);
    // Rebuild the entry list canonicalized so batch picks hit stored
    // coordinates exactly once each.
    Coo = canonicalizeCoo(std::move(Coo));
    for (Idx I = 0; I < Dim; I += 5)
      X.push(I, 1.0 + static_cast<double>(I % 3));
  }

  void load(ContractionService &S) const {
    attrI();
    S.loadCsr("A", A, attrI(), attrJ());
    S.loadSparse("x", X, attrJ());
  }

  /// The \p Round-th batch of \p Nnz updates: +1 on stored coordinates,
  /// cycling through the payload so successive rounds touch fresh rows.
  std::vector<CooEntry<double>> batch(size_t Nnz, int Round) const {
    std::vector<CooEntry<double>> B;
    size_t Start = (static_cast<size_t>(Round) * Nnz * 7) % Coo.size();
    for (size_t K = 0; K < Nnz; ++K) {
      const CooEntry<double> &E = Coo[(Start + K) % Coo.size()];
      B.push_back({E.Row, E.Col, 1.0});
    }
    return B;
  }
};

struct ModeTimes {
  double MeanSeconds = 0.0; ///< Mean per-round, best over reps.
};

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchArgs(Argc, Argv);

  std::string CacheDir =
      (fs::temp_directory_path() / ("etch-bench-ivm-" + std::to_string(getpid())))
          .string();
  ServeOptions SO;
  SO.JitCacheDir = CacheDir;

  Workload WL;

  // One service pair per mode, shared across the sweep: both ingest every
  // batch, so their payloads (and answers) stay in lockstep.
  ContractionService Inc(SO), Full(SO);
  WL.load(Inc);
  WL.load(Full);
  std::string Err;
  if (!Inc.registerView("spmv", ServeQuery{{"A", "x"}}, &Err) ||
      !Inc.registerView("sq", ServeQuery{{"A", "A"}}, &Err)) {
    std::fprintf(stderr, "bench_ivm: view registration failed: %s\n",
                 Err.c_str());
    return 1;
  }

  int Failures = 0;
  auto answers = [&](int Round, double *VSpmv, double *VSq) {
    // Incremental: stored values. Full: re-run the contractions.
    auto RdSpmv = Inc.readView("spmv");
    auto RdSq = Inc.readView("sq");
    ServeResult QSpmv = Full.query(ServeQuery{{"A", "x"}});
    ServeResult QSq = Full.query(ServeQuery{{"A", "A"}});
    if (!RdSpmv || !RdSpmv->Ok || !RdSq || !RdSq->Ok || !QSpmv.Ok || !QSq.Ok) {
      std::fprintf(stderr, "bench_ivm: round %d: a side failed\n", Round);
      ++Failures;
      return;
    }
    if (!bitsEq(RdSpmv->Value, QSpmv.Value) ||
        !bitsEq(RdSq->Value, QSq.Value)) {
      std::fprintf(stderr,
                   "bench_ivm: round %d: incremental != full "
                   "(spmv %.17g vs %.17g; sq %.17g vs %.17g)\n",
                   Round, RdSpmv->Value, QSpmv.Value, RdSq->Value, QSq.Value);
      ++Failures;
    }
    *VSpmv = RdSpmv->Value;
    *VSq = RdSq->Value;
  };

  // Warmup: one batch through both services builds every plan (full
  // plans, delta plans, JIT kernels) before anything is timed.
  {
    std::vector<CooEntry<double>> B = WL.batch(16, -1);
    Inc.appendCsr("A", B);
    Full.appendCsr("A", B);
    double S, Q;
    answers(-1, &S, &Q);
    // The driver's own oracle agrees bit for bit.
    auto Rc = Inc.maintenance().recompute("sq");
    auto Rd = Inc.readView("sq");
    if (!Rc || !Rd || !bitsEq(Rc->Value, Rd->Value)) {
      std::fprintf(stderr, "bench_ivm: recompute oracle diverged\n");
      ++Failures;
    }
  }
  uint64_t PlannedBefore = Inc.planStats().PlannerRuns;
  uint64_t HitsBefore = Inc.viewStats().DeltaPlanHits;

  BenchJson Json;
  ResultTable T({"delta_nnz", "mode", "per_round_ms", "speedup"});
  int Batch = 0;
  for (size_t Nnz : {size_t(1), size_t(16), size_t(256)}) {
    ModeTimes IncBest, FullBest;
    for (int Rep = 0; Rep < Opts.Reps; ++Rep) {
      double IncSec = 0.0, FullSec = 0.0;
      for (int R = 0; R < Rounds; ++R, ++Batch) {
        std::vector<CooEntry<double>> B = WL.batch(Nnz, Batch);
        {
          // Incremental: ingest (the refresh rides the append), then read.
          Timer W;
          Inc.appendCsr("A", B);
          auto V1 = Inc.readView("spmv");
          auto V2 = Inc.readView("sq");
          IncSec += W.seconds();
          if (!V1 || !V2 || !V1->Ok || !V2->Ok)
            ++Failures;
        }
        {
          // Full: ingest, then recontract both shapes from scratch.
          Timer W;
          Full.appendCsr("A", B);
          ServeResult Q1 = Full.query(ServeQuery{{"A", "x"}});
          ServeResult Q2 = Full.query(ServeQuery{{"A", "A"}});
          FullSec += W.seconds();
          if (!Q1.Ok || !Q2.Ok)
            ++Failures;
        }
        double S, Q;
        answers(Batch, &S, &Q);
      }
      IncSec /= Rounds;
      FullSec /= Rounds;
      if (Rep == 0 || IncSec < IncBest.MeanSeconds)
        IncBest.MeanSeconds = IncSec;
      if (Rep == 0 || FullSec < FullBest.MeanSeconds)
        FullBest.MeanSeconds = FullSec;
    }

    double Speedup = FullBest.MeanSeconds / IncBest.MeanSeconds;
    std::string Cfg = "delta=" + std::to_string(Nnz) + ";rounds=" +
                      std::to_string(Rounds);
    Json.add("ivm_refresh", Cfg + ";mode=incremental", 1, IncBest.MeanSeconds);
    Json.add("ivm_refresh", Cfg + ";mode=full", 1, FullBest.MeanSeconds);
    T.addRow({ResultTable::num(int64_t(Nnz)), "incremental",
              ResultTable::num(IncBest.MeanSeconds * 1e3),
              ResultTable::num(Speedup, 1)});
    T.addRow({ResultTable::num(int64_t(Nnz)), "full",
              ResultTable::num(FullBest.MeanSeconds * 1e3), ""});

    // Amortization gate: small batches must win outright.
    if (Nnz <= 16 && IncBest.MeanSeconds >= FullBest.MeanSeconds) {
      std::fprintf(stderr,
                   "bench_ivm: delta=%zu: incremental %.6fs >= full %.6fs\n",
                   Nnz, IncBest.MeanSeconds, FullBest.MeanSeconds);
      ++Failures;
    }
  }
  T.print();

  // Counter gates: refreshes were planner-free, retained-plan hits.
  PlanCacheStats PS = Inc.planStats();
  MaintainStats MS = Inc.viewStats();
  CatalogStats CS = Inc.catalog().stats();
  std::printf("\nplanner_runs=%llu (warmup %llu) delta_builds=%llu "
              "delta_hits=%llu delta_refreshes=%llu retained=%llu\n",
              (unsigned long long)PS.PlannerRuns,
              (unsigned long long)PlannedBefore,
              (unsigned long long)MS.DeltaPlanBuilds,
              (unsigned long long)MS.DeltaPlanHits,
              (unsigned long long)MS.DeltaRefreshes,
              (unsigned long long)PS.Retained);
  std::printf("catalog: appends=%llu delta_nnz=%llu merged_nnz=%llu\n",
              (unsigned long long)CS.Appends, (unsigned long long)CS.DeltaNnz,
              (unsigned long long)CS.MergedNnz);
  if (PS.PlannerRuns != PlannedBefore) {
    std::fprintf(stderr,
                 "bench_ivm: the planner ran during timed refreshes "
                 "(%llu -> %llu)\n",
                 (unsigned long long)PlannedBefore,
                 (unsigned long long)PS.PlannerRuns);
    ++Failures;
  }
  if (MS.DeltaPlanHits <= HitsBefore) {
    std::fprintf(stderr, "bench_ivm: no retained delta-plan hits recorded\n");
    ++Failures;
  }

  std::error_code Ec;
  fs::remove_all(CacheDir, Ec);

  if (Failures) {
    std::fprintf(stderr, "bench_ivm: %d gate failures\n", Failures);
    return 1;
  }
  if (!Opts.JsonPath.empty() && !Json.writeFile(Opts.JsonPath))
    return 1;
  return 0;
}

//===- bench/bench_micro.cpp - google-benchmark kernel microbenches ------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Precise microbenchmarks of the core kernels via google-benchmark, as a
// statistically careful complement to the figure-sweep drivers. The Arg is
// nonzeros per operand; state counters report throughput in nonzeros/s.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "baselines/taco_kernels.h"
#include "compiler/bytecode.h"
#include "compiler/frontend.h"
#include "formats/random.h"

#include <benchmark/benchmark.h>

using namespace etch;

namespace {

constexpr Idx VecDim = 10'000'000;

void BM_TripleDotEtch(benchmark::State &State) {
  Rng R(1);
  size_t Nnz = static_cast<size_t>(State.range(0));
  auto X = randomSparseVector(R, VecDim, Nnz);
  auto Y = randomSparseVector(R, VecDim, Nnz);
  auto Z = randomSparseVector(R, VecDim, Nnz);
  for (auto _ : State)
    benchmark::DoNotOptimize(kernels::tripleDot(X, Y, Z));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Nnz) * 3);
}

void BM_TripleDotTaco(benchmark::State &State) {
  Rng R(1);
  size_t Nnz = static_cast<size_t>(State.range(0));
  auto X = randomSparseVector(R, VecDim, Nnz);
  auto Y = randomSparseVector(R, VecDim, Nnz);
  auto Z = randomSparseVector(R, VecDim, Nnz);
  for (auto _ : State)
    benchmark::DoNotOptimize(taco::tripleDot(X, Y, Z));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Nnz) * 3);
}

void BM_SpmvEtch(benchmark::State &State) {
  Rng R(2);
  const Idx N = 4000;
  auto A = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  auto X = randomDenseVector(R, N);
  DenseVector<double> Y(N);
  for (auto _ : State) {
    kernels::spmv(A, X, Y);
    benchmark::DoNotOptimize(Y.Val.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(A.nnz()));
}

void BM_SpmvTaco(benchmark::State &State) {
  Rng R(2);
  const Idx N = 4000;
  auto A = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  auto X = randomDenseVector(R, N);
  DenseVector<double> Y(N);
  for (auto _ : State) {
    taco::spmv(A, X, Y);
    benchmark::DoNotOptimize(Y.Val.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(A.nnz()));
}

// Args are {nnz, threads}: the chunk-parallel kernels of
// streams/parallel.h, swept across thread counts. The threads=1 pool runs
// fully inline, so the gap to BM_SpmvEtch is the partitioning overhead.
void BM_SpmvParallel(benchmark::State &State) {
  Rng R(2);
  const Idx N = 4000;
  auto A = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  auto X = randomDenseVector(R, N);
  DenseVector<double> Y(N);
  ThreadPool Pool(static_cast<unsigned>(State.range(1)));
  for (auto _ : State) {
    kernels::spmvParallel(Pool, A, X, Y);
    benchmark::DoNotOptimize(Y.Val.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(A.nnz()));
}

void BM_MttkrpParallel(benchmark::State &State) {
  Rng R(4);
  const Idx NI = 300, NJ = 300, NK = 300;
  const int64_t Rank = 16;
  auto B = randomCsf3(R, NI, NJ, NK, static_cast<size_t>(State.range(0)));
  std::vector<double> C(static_cast<size_t>(NJ * Rank)),
      D(static_cast<size_t>(NK * Rank));
  for (auto &V : C)
    V = randomValue(R);
  for (auto &V : D)
    V = randomValue(R);
  std::vector<double> Out;
  ThreadPool Pool(static_cast<unsigned>(State.range(1)));
  for (auto _ : State) {
    kernels::mttkrpParallel(Pool, B, C, D, Rank, Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(State.range(0)));
}

// Args are {program, backend}: program 0 is the Fig. 2 triple product,
// program 1 a fully contracted SpMV; backend 0 is the tree-walking VM,
// backend 1 the register-allocated bytecode VM. Both backends execute the
// same O2-compiled P program against the same memory, so the row pairs
// isolate pure dispatch/lookup overhead (counters report VM steps/s).
void BM_CompiledVm(benchmark::State &State) {
  Attr AI = Attr::named("micro_i"), AJ = Attr::named("micro_j");
  LowerCtx Ctx;
  Ctx.OptLevel = 2;
  VmMemory M;
  PRef Prog;
  if (State.range(0) == 0) {
    const Idx N = 30'000;
    Ctx.setDim(AI, N);
    for (const char *Name : {"x", "y", "z"})
      Ctx.bind(sparseVecBinding(Name, AI));
    Idx Step = 2;
    for (const char *Name : {"x", "y", "z"}) {
      SparseVector<double> V(N);
      for (Idx I = 0; I < N; I += Step)
        V.push(I, 1.0 + 1e-6 * static_cast<double>(I % 89));
      bindSparseVector(M, Name, V);
      ++Step;
    }
    Prog = compileFullContraction(
        Ctx, Expr::var("x") * Expr::var("y") * Expr::var("z"), "out");
  } else {
    const Idx N = 1'000;
    Rng R(5);
    Ctx.setDim(AI, N);
    Ctx.setDim(AJ, N);
    Ctx.bind(csrBinding("A", AI, AJ));
    Ctx.bind(sparseVecBinding("x", AJ));
    bindCsr(M, "A", randomCsr(R, N, N, 30'000));
    bindSparseVector(M, "x", randomSparseVector(R, N, 500));
    std::string Err;
    Prog = compileFullContraction(
        Ctx, mulExpand(Expr::var("A"), Expr::var("x"), Ctx.types(), &Err),
        "out");
  }
  int64_t Steps = 0;
  if (State.range(1) == 0) {
    for (auto _ : State) {
      VmRunResult R = vmRun(Prog, M);
      Steps = R.Steps;
      benchmark::DoNotOptimize(R.Steps);
    }
  } else {
    BytecodeProgram BC = compileBytecode(Prog);
    for (auto _ : State) {
      VmRunResult R = bytecodeRun(BC, M);
      Steps = R.Steps;
      benchmark::DoNotOptimize(R.Steps);
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Steps);
}

void BM_InnerEtch(benchmark::State &State) {
  Rng R(3);
  const Idx N = 4000;
  auto A = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  auto B = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(kernels::inner(A, B));
}

void BM_InnerTaco(benchmark::State &State) {
  Rng R(3);
  const Idx N = 4000;
  auto A = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  auto B = randomCsr(R, N, N, static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(taco::inner(A, B));
}

BENCHMARK(BM_TripleDotEtch)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_TripleDotTaco)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_SpmvEtch)->Arg(40'000)->Arg(400'000);
BENCHMARK(BM_SpmvTaco)->Arg(40'000)->Arg(400'000);
BENCHMARK(BM_SpmvParallel)
    ->Args({400'000, 1})
    ->Args({400'000, 2})
    ->Args({400'000, 4})
    ->Args({400'000, 8});
BENCHMARK(BM_MttkrpParallel)
    ->Args({80'000, 1})
    ->Args({80'000, 2})
    ->Args({80'000, 4})
    ->Args({80'000, 8});
BENCHMARK(BM_CompiledVm)
    ->ArgNames({"program", "backend"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});
BENCHMARK(BM_InnerEtch)->Arg(40'000)->Arg(400'000);
BENCHMARK(BM_InnerTaco)->Arg(40'000)->Arg(400'000);

} // namespace

BENCHMARK_MAIN();

//===- bench/bench_serve.cpp - Serving-layer throughput and latency -------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// A closed-loop load generator against the concurrent contraction service
// (serve/service.h): N client threads issue a fixed mixed workload of
// four query shapes round-robin, each thread timing every request, and
// the driver reports throughput plus p50/p95/p99 latency per client
// count. Before any timing it gates on correctness: every shape's served
// value is checked against a dense reference, and a 64-query batch must
// be bit-identical, index for index, to per-request serial execution on
// an identically loaded single-threaded service.
//
// After the sweep the run is counter-verified: the plan-cache hit rate
// (the fraction of requests that performed no planner enumeration —
// PlannerRuns is asserted equal to Misses) must exceed 90%, or the
// driver exits nonzero. That makes the CI smoke run a regression gate on
// the serving amortization story, not just a timer.
//
// Timings prefer the JIT-to-native backend and degrade to the bytecode
// VM when no C compiler is available; the report says which one ran.
//
// `--writers N --append-nnz K` switches the sweep to a mixed read/write
// workload: N background threads append K-entry batches to the matrix
// while the clients issue queries *and* read a live materialized view of
// the SpMV total. Queries re-plan per write by design (plans are keyed on
// tensor versions), so the steady-state hit-rate gate is replaced by the
// IVM gates: view reads stay planner-free (no delta plan is ever rebuilt
// after warmup, and retained-plan hits grow), and the final stored view
// matches full recomputation.
//
//===----------------------------------------------------------------------===//

#include "serve/service.h"

#include "formats/random.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace etch;

namespace {

namespace fs = std::filesystem;

Attr attrI() { return Attr::named("bsrv_i"); }
Attr attrJ() { return Attr::named("bsrv_j"); }

bool bitsEq(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

struct Workload {
  CsrMatrix<double> A;
  SparseVector<double> X{2000}, Y{2000}, Z{2000}, W{2000};
  DenseVector<double> D{2000};
  std::vector<ServeQuery> Shapes;

  Workload() {
    Rng R(131);
    A = randomCsr(R, 2000, 2000, 40000);
    X = randomSparseVector(R, 2000, 400);
    Y = randomSparseVector(R, 2000, 600);
    Z = randomSparseVector(R, 2000, 600);
    W = randomSparseVector(R, 2000, 600);
    for (Idx I = 0; I < D.Size; ++I)
      D.Val[static_cast<size_t>(I)] = randomValue(R);
    Shapes = {ServeQuery{{"A", "x"}}, ServeQuery{{"y", "z", "w"}},
              ServeQuery{{"A", "d"}}, ServeQuery{{"x", "d"}}};
  }

  void load(ContractionService &S) const {
    attrI();
    S.loadCsr("A", A, attrI(), attrJ());
    S.loadSparse("x", X, attrJ());
    S.loadSparse("y", Y, attrI());
    S.loadSparse("z", Z, attrI());
    S.loadSparse("w", W, attrI());
    S.loadDense("d", D, attrJ());
  }

  /// Dense references for each shape, computed straight off the data.
  std::vector<double> references() const {
    std::vector<double> XD(2000, 0.0), YD(2000, 0.0), ZD(2000, 0.0),
        WD(2000, 0.0);
    for (size_t K = 0; K < X.Crd.size(); ++K)
      XD[static_cast<size_t>(X.Crd[K])] = X.Val[K];
    for (size_t K = 0; K < Y.Crd.size(); ++K)
      YD[static_cast<size_t>(Y.Crd[K])] = Y.Val[K];
    for (size_t K = 0; K < Z.Crd.size(); ++K)
      ZD[static_cast<size_t>(Z.Crd[K])] = Z.Val[K];
    for (size_t K = 0; K < W.Crd.size(); ++K)
      WD[static_cast<size_t>(W.Crd[K])] = W.Val[K];
    double Spmv = 0.0, MatDense = 0.0;
    for (size_t P = 0; P < A.Val.size(); ++P) {
      Spmv += A.Val[P] * XD[static_cast<size_t>(A.Crd[P])];
      MatDense += A.Val[P] * D.Val[static_cast<size_t>(A.Crd[P])];
    }
    double Triple = 0.0, VecDense = 0.0;
    for (size_t I = 0; I < 2000; ++I) {
      Triple += YD[I] * ZD[I] * WD[I];
      VecDense += XD[I] * D.Val[I];
    }
    return {Spmv, Triple, MatDense, VecDense};
  }
};

double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(Sorted.size() - 1));
  return Sorted[I];
}

struct SweepResult {
  double WallSeconds = 0.0;
  size_t Requests = 0;
  double P50 = 0.0, P95 = 0.0, P99 = 0.0, Mean = 0.0;
  double qps() const { return double(Requests) / WallSeconds; }
};

/// One closed-loop run: \p Clients threads, \p Iters requests each,
/// round-robin over the workload shapes, per-request latencies recorded.
SweepResult runClosedLoop(ContractionService &Svc, const Workload &WL,
                          int Clients, int Iters) {
  std::vector<std::vector<double>> Lat(static_cast<size_t>(Clients));
  Timer Wall;
  {
    std::vector<std::thread> Ts;
    for (int C = 0; C < Clients; ++C)
      Ts.emplace_back([&, C] {
        std::vector<double> &My = Lat[static_cast<size_t>(C)];
        My.reserve(static_cast<size_t>(Iters));
        for (int I = 0; I < Iters; ++I) {
          const ServeQuery &Q =
              WL.Shapes[static_cast<size_t>(C + I) % WL.Shapes.size()];
          Timer T;
          ServeResult R = Svc.query(Q);
          My.push_back(T.seconds());
          if (!R.Ok) {
            std::fprintf(stderr, "bench_serve: query failed: %s\n",
                         R.Error.c_str());
            std::abort();
          }
        }
      });
    for (std::thread &T : Ts)
      T.join();
  }
  SweepResult S;
  S.WallSeconds = Wall.seconds();
  std::vector<double> All;
  for (const std::vector<double> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  S.Requests = All.size();
  for (double L : All)
    S.Mean += L;
  S.Mean /= double(std::max<size_t>(1, All.size()));
  S.P50 = percentile(All, 0.50);
  S.P95 = percentile(All, 0.95);
  S.P99 = percentile(All, 0.99);
  return S;
}

/// One mixed read/write run: the closed loop of runClosedLoop plus one
/// `readView` per request, while \p Writers threads append \p AppendNnz
/// random entries to the matrix as fast as the write lock admits them.
SweepResult runMixedLoop(ContractionService &Svc, const Workload &WL,
                         int Clients, int Iters, int Writers,
                         size_t AppendNnz) {
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Ws;
  for (int W = 0; W < Writers; ++W)
    Ws.emplace_back([&Svc, &Stop, AppendNnz, W] {
      Rng R(static_cast<uint64_t>(7919 + W));
      while (!Stop.load(std::memory_order_relaxed)) {
        std::vector<CooEntry<double>> B;
        for (size_t K = 0; K < AppendNnz; ++K)
          B.push_back({static_cast<Idx>(R.nextBelow(2000)),
                       static_cast<Idx>(R.nextBelow(2000)), randomValue(R)});
        Svc.appendCsr("A", B);
      }
    });

  std::vector<std::vector<double>> Lat(static_cast<size_t>(Clients));
  Timer Wall;
  {
    std::vector<std::thread> Ts;
    for (int C = 0; C < Clients; ++C)
      Ts.emplace_back([&, C] {
        std::vector<double> &My = Lat[static_cast<size_t>(C)];
        My.reserve(static_cast<size_t>(Iters));
        for (int I = 0; I < Iters; ++I) {
          const ServeQuery &Q =
              WL.Shapes[static_cast<size_t>(C + I) % WL.Shapes.size()];
          Timer T;
          ServeResult R = Svc.query(Q);
          My.push_back(T.seconds());
          auto V = Svc.readView("spmv");
          if (!R.Ok || !V || !V->Ok) {
            std::fprintf(stderr, "bench_serve: mixed request failed: %s\n",
                         R.Ok ? (V ? V->Error.c_str() : "view missing")
                              : R.Error.c_str());
            std::abort();
          }
        }
      });
    for (std::thread &T : Ts)
      T.join();
  }
  SweepResult S;
  S.WallSeconds = Wall.seconds();
  Stop.store(true);
  for (std::thread &T : Ws)
    T.join();
  std::vector<double> All;
  for (const std::vector<double> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  S.Requests = All.size();
  for (double L : All)
    S.Mean += L;
  S.Mean /= double(std::max<size_t>(1, All.size()));
  S.P50 = percentile(All, 0.50);
  S.P95 = percentile(All, 0.95);
  S.P99 = percentile(All, 0.99);
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  // Mixed-mode flags are stripped before the shared parser (it aborts on
  // anything it does not know).
  int Writers = 0;
  size_t AppendNnz = 8;
  std::vector<char *> Rest{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--writers" && I + 1 < Argc)
      Writers = std::atoi(Argv[++I]);
    else if (A == "--append-nnz" && I + 1 < Argc)
      AppendNnz = static_cast<size_t>(std::atol(Argv[++I]));
    else
      Rest.push_back(Argv[I]);
  }
  BenchOptions Opts = parseBenchArgs(static_cast<int>(Rest.size()),
                                     Rest.data());
  const int Iters = 300;

  std::string CacheDir =
      (fs::temp_directory_path() /
       ("etch-bench-serve-" + std::to_string(getpid())))
          .string();

  Workload WL;
  ServeOptions SO;
  SO.JitCacheDir = CacheDir;
  ContractionService Svc(SO);
  WL.load(Svc);

  int Failures = 0;

  //===--------------------------------------------------------------------===//
  // Correctness gate 1: served values vs dense references
  //===--------------------------------------------------------------------===//
  std::vector<double> Refs = WL.references();
  std::vector<double> Served(WL.Shapes.size());
  std::string Backend;
  for (size_t I = 0; I < WL.Shapes.size(); ++I) {
    ServeResult R = Svc.query(WL.Shapes[I]);
    if (!R.Ok) {
      std::fprintf(stderr, "shape %zu failed: %s\n", I, R.Error.c_str());
      return 1;
    }
    Served[I] = R.Value;
    Backend = R.Backend;
    double Tol = 1e-9 * std::max(1.0, std::abs(Refs[I]));
    if (std::abs(R.Value - Refs[I]) > Tol) {
      std::fprintf(stderr, "shape %zu: served %.17g, reference %.17g\n", I,
                   R.Value, Refs[I]);
      ++Failures;
    }
  }

  //===--------------------------------------------------------------------===//
  // Correctness gate 2: batch vs per-request serial, bit for bit
  //===--------------------------------------------------------------------===//
  {
    ServeOptions SerialOpts = SO;
    SerialOpts.Threads = 1;
    ContractionService Serial(SerialOpts);
    WL.load(Serial);
    std::vector<ServeQuery> Batch;
    for (int I = 0; I < 64; ++I)
      Batch.push_back(WL.Shapes[static_cast<size_t>(I) % WL.Shapes.size()]);
    std::vector<ServeResult> Got = Svc.queryBatch(Batch);
    for (size_t I = 0; I < Batch.size(); ++I) {
      ServeResult Want = Serial.query(Batch[I]);
      if (!Got[I].Ok || !Want.Ok ||
          !bitsEq(Got[I].Value, Want.Value)) {
        std::fprintf(stderr,
                     "batch[%zu]: batched %.17g != serial %.17g\n", I,
                     Got[I].Value, Want.Value);
        ++Failures;
      }
    }
  }
  if (Failures) {
    std::fprintf(stderr, "bench_serve: %d correctness failures\n", Failures);
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // Closed-loop sweep over client counts (read-only or mixed read/write)
  //===--------------------------------------------------------------------===//
  uint64_t DeltaBuildsWarm = 0, DeltaHitsWarm = 0;
  if (Writers > 0) {
    // Register the live view and push one warm batch through it so every
    // delta plan exists before anything is timed.
    std::string VErr;
    if (!Svc.registerView("spmv", ServeQuery{{"A", "x"}}, &VErr)) {
      std::fprintf(stderr, "bench_serve: view registration failed: %s\n",
                   VErr.c_str());
      return 1;
    }
    Svc.appendCsr("A", {{0, 0, 0.5}});
    MaintainStats MS = Svc.viewStats();
    DeltaBuildsWarm = MS.DeltaPlanBuilds;
    DeltaHitsWarm = MS.DeltaPlanHits;
  }

  const std::string Mode = Writers > 0 ? "serve_mixed_rw" : "serve_mixed";
  BenchJson Json;
  ResultTable T({"clients", "qps", "p50_ms", "p95_ms", "p99_ms", "mean_ms"});
  for (int Clients : Opts.Threads) {
    SweepResult Best;
    for (int Rep = 0; Rep < Opts.Reps; ++Rep) {
      SweepResult S =
          Writers > 0
              ? runMixedLoop(Svc, WL, Clients, Iters, Writers, AppendNnz)
              : runClosedLoop(Svc, WL, Clients, Iters);
      if (Best.Requests == 0 || S.qps() > Best.qps())
        Best = S;
    }
    std::string Cfg = "clients=" + std::to_string(Clients) +
                      ";backend=" + Backend +
                      ";requests=" + std::to_string(Best.Requests);
    if (Writers > 0)
      Cfg += ";writers=" + std::to_string(Writers) +
             ";append_nnz=" + std::to_string(AppendNnz);
    Json.add(Mode, Cfg + ";metric=wall", Clients, Best.WallSeconds);
    Json.add(Mode, Cfg + ";metric=p50", Clients, Best.P50);
    Json.add(Mode, Cfg + ";metric=p95", Clients, Best.P95);
    Json.add(Mode, Cfg + ";metric=p99", Clients, Best.P99);
    Json.add(Mode, Cfg + ";metric=mean", Clients, Best.Mean);
    T.addRow({ResultTable::num(int64_t(Clients)),
              ResultTable::num(Best.qps(), 0),
              ResultTable::num(Best.P50 * 1e3),
              ResultTable::num(Best.P95 * 1e3),
              ResultTable::num(Best.P99 * 1e3),
              ResultTable::num(Best.Mean * 1e3)});
  }
  T.print();

  //===--------------------------------------------------------------------===//
  // Mixed-mode gates: the view refreshed planner-free and reads current
  //===--------------------------------------------------------------------===//
  if (Writers > 0) {
    MaintainStats MS = Svc.viewStats();
    std::printf("\nivm: batches=%llu delta_builds=%llu delta_hits=%llu "
                "refreshes=%llu\n",
                (unsigned long long)MS.Batches,
                (unsigned long long)MS.DeltaPlanBuilds,
                (unsigned long long)MS.DeltaPlanHits,
                (unsigned long long)MS.DeltaRefreshes);
    if (MS.DeltaPlanBuilds != DeltaBuildsWarm) {
      std::fprintf(stderr,
                   "bench_serve: delta plans were rebuilt during the sweep "
                   "(%llu -> %llu)\n",
                   (unsigned long long)DeltaBuildsWarm,
                   (unsigned long long)MS.DeltaPlanBuilds);
      return 1;
    }
    if (MS.DeltaPlanHits <= DeltaHitsWarm) {
      std::fprintf(stderr, "bench_serve: no retained delta-plan hits\n");
      return 1;
    }
    auto Rd = Svc.readView("spmv");
    auto Rc = Svc.maintenance().recompute("spmv");
    if (!Rd || !Rc || !Rd->Ok || !Rc->Ok) {
      std::fprintf(stderr, "bench_serve: final view read failed\n");
      return 1;
    }
    // Arbitrary doubles accumulate in different orders on the two paths;
    // equality is up to relative rounding, not bitwise.
    double Tol = 1e-9 * std::max(1.0, std::abs(Rc->Value));
    if (std::abs(Rd->Value - Rc->Value) > Tol) {
      std::fprintf(stderr,
                   "bench_serve: view %.17g diverged from recompute %.17g\n",
                   Rd->Value, Rc->Value);
      return 1;
    }
    std::error_code MixedEc;
    fs::remove_all(CacheDir, MixedEc);
    if (!Opts.JsonPath.empty() && !Json.writeFile(Opts.JsonPath))
      return 1;
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Counter-verified amortization: >90% of requests plan-free
  //===--------------------------------------------------------------------===//
  PlanCacheStats PS = Svc.planStats();
  ServiceStats SS = Svc.stats();
  double HitRate = 1.0 - double(PS.Misses) / double(SS.Queries);
  std::printf("\nbackend=%s queries=%llu executions=%llu coalesced=%llu\n",
              Backend.c_str(), (unsigned long long)SS.Queries,
              (unsigned long long)SS.Executions,
              (unsigned long long)SS.Coalesced);
  std::printf("plan cache: hits=%llu misses=%llu planner_runs=%llu "
              "hit_rate=%.4f\n",
              (unsigned long long)PS.Hits, (unsigned long long)PS.Misses,
              (unsigned long long)PS.PlannerRuns, HitRate);
  if (PS.PlannerRuns != PS.Misses) {
    std::fprintf(stderr,
                 "bench_serve: planner ran %llu times for %llu misses — a "
                 "hit must perform no enumeration\n",
                 (unsigned long long)PS.PlannerRuns,
                 (unsigned long long)PS.Misses);
    return 1;
  }
  if (HitRate <= 0.9) {
    std::fprintf(stderr, "bench_serve: steady-state hit rate %.4f <= 0.9\n",
                 HitRate);
    return 1;
  }

  std::error_code Ec;
  fs::remove_all(CacheDir, Ec);

  if (!Opts.JsonPath.empty() && !Json.writeFile(Opts.JsonPath))
    return 1;
  return 0;
}

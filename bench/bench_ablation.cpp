//===- bench/bench_ablation.cpp - Design-choice ablations -----------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Ablations for the design choices DESIGN.md calls out (not a paper
// figure, but the knobs behind Figure 17's smul panel and Example 2.1):
//
//   A. skip implementation — linear vs binary vs galloping search on an
//      asymmetric sparse-sparse intersection (the sparser side drives long
//      skips through the denser side);
//   B. attribute (iteration) order — Example 2.1's filtered relation with
//      one highly selective predicate: filtering on the selective
//      attribute first skips whole slices;
//   C. fusion — the three-way vector product evaluated fused vs via a
//      materialised temporary (Section 2.1's motivating example).
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "planner/plan.h"
#include "relational/trie.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

namespace {

void ablateSkipPolicy(BenchJson &Json) {
  std::puts("--- A: skip policy on asymmetric intersection x*y*z ---");
  std::puts("(|x| = 1000 nnz drives skips through |y| = |z| = 2M nnz)\n");
  const Idx N = 40'000'000;
  Rng R(31);
  auto X = randomSparseVector(R, N, 1000);
  auto Y = randomSparseVector(R, N, 2'000'000);
  auto Z = randomSparseVector(R, N, 2'000'000);

  volatile double Sink;
  ResultTable T({"policy", "time_ms"});
  double L = timeBest([&] { Sink = kernels::tripleDot(X, Y, Z); });
  T.addRow({"linear", ResultTable::num(L * 1e3)});
  double B = timeBest(
      [&] { Sink = kernels::tripleDot<SearchPolicy::Binary>(X, Y, Z); });
  T.addRow({"binary", ResultTable::num(B * 1e3)});
  double G = timeBest(
      [&] { Sink = kernels::tripleDot<SearchPolicy::Gallop>(X, Y, Z); });
  T.addRow({"gallop", ResultTable::num(G * 1e3)});
  (void)Sink;
  T.print();
  Json.add("ablation_skip_policy", "linear", 1, L);
  Json.add("ablation_skip_policy", "binary", 1, B);
  Json.add("ablation_skip_policy", "gallop", 1, G);
}

void ablateAttributeOrder(BenchJson &Json) {
  std::puts("\n--- B: attribute order for Example 2.1's filtered scan ---");
  std::puts("(predicate on y passes 0.1%; y-first skips whole x-slices)\n");
  const Idx NX = 3000, NY = 3000;
  const size_t Rows = 1'000'000;
  Rng R(37);

  // T(x, y) as both orderings, plus the selective predicate p_y.
  std::vector<std::array<Idx, 2>> XY, YX;
  std::vector<Tuple> TTuples;
  XY.reserve(Rows);
  YX.reserve(Rows);
  TTuples.reserve(Rows);
  for (size_t I = 0; I < Rows; ++I) {
    Idx X = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(NX)));
    Idx Y = static_cast<Idx>(R.nextBelow(static_cast<uint64_t>(NY)));
    XY.push_back({X, Y});
    YX.push_back({Y, X});
    TTuples.push_back({X, Y});
  }
  auto TXy = Trie<2, int64_t>::fromKeysCounting(std::move(XY));
  auto TYx = Trie<2, int64_t>::fromKeysCounting(std::move(YX));

  std::vector<std::array<Idx, 1>> PassY;
  std::vector<Tuple> PTuples;
  for (Idx Y = 0; Y < NY; ++Y)
    if (R.nextBool(0.001))
      PassY.push_back({Y});
  if (PassY.empty())
    PassY.push_back({0});
  for (auto &P : PassY)
    PTuples.push_back({P[0]});
  auto PY = Trie<1, int64_t>::fromKeys(std::move(PassY), 1);

  // The planner's estimates for the same two orders, from the same data:
  // both trie orientations are pre-built, so a "transpose" is free.
  Attr AX = Attr::named("abl_x"), AY = Attr::named("abl_y");
  PlanQuery Q;
  PlanTerm Term;
  Term.Factors = {{"T", {AX, AY}}, {"p", {AY}}};
  Term.Summed = {AX, AY};
  Q.Terms.push_back(std::move(Term));
  Q.Stats.emplace("T", [&] {
    TensorStats S = statsFromTuples(
        "T", {AX, AY}, {LevelSpec::Compressed, LevelSpec::Compressed},
        {NX, NY}, TTuples);
    S.CanTranspose = true;
    return S;
  }());
  Q.Stats.emplace("p", statsFromTuples("p", {AY}, {LevelSpec::Compressed},
                                       {NY}, PTuples));
  Q.Dims.emplace(AX.id(), NX);
  Q.Dims.emplace(AY.id(), NY);
  PlanOptions PO;
  PO.TransposeCostPerNnz = 0.0;
  auto XFirstPlan = planForOrder(Q, {AX, AY}, PO);
  auto YFirstPlan = planForOrder(Q, {AY, AX}, PO);

  using K = I64Semiring;
  volatile int64_t Sink;

  // x-first: iterate all of T(x, y); intersect y with p_y at the inner
  // level (the predicate is checked deep in the loop nest).
  double XFirst = timeBest([&] {
    auto Lifted = mapStream(TXy.stream(), [&](auto YLev) {
      return mulStreams<K>(std::move(YLev), PY.stream());
    });
    Sink = sumAll<K>(std::move(Lifted));
  });

  // y-first: intersect y at the outer level; whole x-slices are skipped.
  double YFirst = timeBest([&] {
    auto Outer = joinStreams(KeepLeft{}, TYx.stream(), PY.stream());
    Sink = sumAll<K>(std::move(Outer));
  });
  (void)Sink;

  ResultTable T({"order", "time_ms", "speedup"});
  T.addRow({"x-first (filter inner)", ResultTable::num(XFirst * 1e3),
            ResultTable::num(1.0, 1)});
  T.addRow({"y-first (filter outer)", ResultTable::num(YFirst * 1e3),
            ResultTable::num(XFirst / YFirst, 1)});
  T.print();
  if (XFirstPlan && YFirstPlan) {
    Json.add("ablation_attr_order", "x_first", 1, XFirst,
             XFirstPlan->cost(), XFirstPlan->AccessCost);
    Json.add("ablation_attr_order", "y_first", 1, YFirst,
             YFirstPlan->cost(), YFirstPlan->AccessCost);
  } else {
    Json.add("ablation_attr_order", "x_first", 1, XFirst);
    Json.add("ablation_attr_order", "y_first", 1, YFirst);
  }
}

void ablateFusion(BenchJson &Json) {
  std::puts("\n--- C: fused vs materialised x*y*z (Section 2.1) ---");
  std::puts("(z is sparse; materialising x*y first wastes its work)\n");
  const Idx N = 8'000'000;
  Rng R(41);
  auto X = randomSparseVector(R, N, 2'000'000);
  auto Y = randomSparseVector(R, N, 2'000'000);
  auto Z = randomSparseVector(R, N, 2'000);

  using S = F64Semiring;
  volatile double Sink;
  double Fused = timeBest([&] { Sink = kernels::tripleDot(X, Y, Z); });

  double Unfused = timeBest([&] {
    // v := x * y materialised, then sum(v * z).
    SparseVector<double> V(N);
    forEach(mulStreams<S>(X.stream(), Y.stream()),
            [&](Idx I, double Val) { V.push(I, Val); });
    Sink = sumAll<S>(mulStreams<S>(V.stream(), Z.stream()));
  });
  (void)Sink;

  ResultTable T({"execution", "time_ms", "speedup"});
  T.addRow({"unfused (materialise x*y)", ResultTable::num(Unfused * 1e3),
            ResultTable::num(1.0, 1)});
  T.addRow({"fused", ResultTable::num(Fused * 1e3),
            ResultTable::num(Unfused / Fused, 1)});
  T.print();
  Json.add("ablation_fusion", "unfused", 1, Unfused);
  Json.add("ablation_fusion", "fused", 1, Fused);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchArgs(Argc, Argv);
  std::puts("=== Ablations: skip policy, iteration order, fusion ===\n");
  BenchJson Json;
  ablateSkipPolicy(Json);
  ablateAttributeOrder(Json);
  ablateFusion(Json);
  if (!BO.JsonPath.empty() && !Json.writeFile(BO.JsonPath))
    return 1;
  return 0;
}

//===- bench/bench_sec81_matmul_order.cpp - Section 8.1 orderings --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the Section 8.1 iteration-order experiment: CSR mat-mul on a
// 10 000 x 10 000 matrix with 200 000 nonzeros, comparing the
// inner-product ordering e1 = Σ_c (↑b x)(↑a y) — O(n²k) — against the
// linear-combination-of-rows ordering e2 = Σ_b (↑c x)(↑a y) — O(nk²).
// The paper measured 9.77 s vs 0.24 s (~40x).
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

int main() {
  std::puts("=== Section 8.1: matrix multiply iteration orderings ===");
  std::puts("(paper: inner-product 9.77 s vs linear-combination 0.24 s,");
  std::puts(" ~40x from the O(n^2 k) vs O(n k^2) asymptotic gap)\n");

  const Idx N = 10'000;
  const size_t Nnz = 200'000;
  Rng R(11);
  auto A = randomCsr(R, N, N, Nnz);
  auto B = randomCsr(R, N, N, Nnz);

  // Transposed copy for the inner-product ordering.
  std::vector<CooEntry<double>> BtCoo;
  BtCoo.reserve(B.nnz());
  for (Idx I = 0; I < B.NumRows; ++I)
    for (size_t P = B.Pos[static_cast<size_t>(I)];
         P < B.Pos[static_cast<size_t>(I) + 1]; ++P)
      BtCoo.push_back({B.Crd[P], I, B.Val[P]});
  auto BT = CsrMatrix<double>::fromCoo(B.NumCols, B.NumRows, BtCoo);

  volatile double Sink = 0.0;
  Timer T1;
  auto C1 = kernels::mmul(A, B);
  double LinComb = T1.seconds();
  Sink = C1.Val.empty() ? 0.0 : C1.Val[0];

  Timer T2;
  auto C2 = kernels::mmulInnerProduct(A, BT);
  double InnerProd = T2.seconds();
  Sink = C2.Val.empty() ? 0.0 : C2.Val[0];
  (void)Sink;

  ResultTable T({"ordering", "time_s", "slowdown_vs_lincomb"});
  T.addRow({"linear-combination (e2)", ResultTable::num(LinComb),
            ResultTable::num(1.0, 1)});
  T.addRow({"inner-product (e1)", ResultTable::num(InnerProd),
            ResultTable::num(InnerProd / LinComb, 1)});
  T.print();
  return 0;
}

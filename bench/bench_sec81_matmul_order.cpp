//===- bench/bench_sec81_matmul_order.cpp - Section 8.1 orderings --------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the Section 8.1 iteration-order experiment: CSR mat-mul on a
// 10 000 x 10 000 matrix with 200 000 nonzeros, comparing the
// inner-product ordering e1 = Σ_c (↑b x)(↑a y) — O(n²k) — against the
// linear-combination-of-rows ordering e2 = Σ_b (↑c x)(↑a y) — O(nk²).
// The paper measured 9.77 s vs 0.24 s (~40x).
//
// The third row is the planner's: the contraction planner stats the actual
// inputs, enumerates the realizable orders, and the "auto" row executes
// whichever ordering its cost model ranks best (planning happens outside
// the timed region). Each JSON row records the cost model's estimate next
// to the measured time.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "planner/plan.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

int main(int Argc, char **Argv) {
  BenchOptions BO = parseBenchArgs(Argc, Argv);

  std::puts("=== Section 8.1: matrix multiply iteration orderings ===");
  std::puts("(paper: inner-product 9.77 s vs linear-combination 0.24 s,");
  std::puts(" ~40x from the O(n^2 k) vs O(n k^2) asymptotic gap)\n");

  const Idx N = 10'000;
  const size_t Nnz = 200'000;
  Rng R(11);
  auto A = randomCsr(R, N, N, Nnz);
  auto B = randomCsr(R, N, N, Nnz);

  // Transposed copy for the inner-product ordering.
  auto BT = transpose(B);

  // Pose Σ_j A(i,j)·B(j,k) to the planner with statistics from the actual
  // matrices; i < j < k is the interning order, so the plan orders below
  // read outermost-first against it.
  Attr I = Attr::named("s81_i"), J = Attr::named("s81_j"),
       K = Attr::named("s81_k");
  TypeContext Ctx;
  Ctx["A"] = Shape{I, J};
  Ctx["B"] = Shape{J, K};
  ExprPtr E =
      Expr::sum(J, mulExpand(Expr::var("A"), Expr::var("B"), Ctx));
  std::map<std::string, TensorStats> Stats;
  Stats["A"] = statsOfCsr("A", A, I, J);
  Stats["B"] = statsOfCsr("B", B, J, K);
  std::string Err;
  auto Q = extractQuery(E, Ctx, Stats, {}, &Err);
  if (!Q) {
    std::fprintf(stderr, "planner extraction failed: %s\n", Err.c_str());
    return 1;
  }

  const std::vector<Attr> LinCombOrder{I, J, K};
  const std::vector<Attr> InnerProdOrder{I, K, J};
  auto LinCombPlan = planForOrder(*Q, LinCombOrder);
  auto InnerProdPlan = planForOrder(*Q, InnerProdOrder);
  auto Best = bestPlan(*Q);
  if (!LinCombPlan || !InnerProdPlan || !Best) {
    std::fprintf(stderr, "planner could not realize the 8.1 orders\n");
    return 1;
  }
  std::puts("planner EXPLAIN for the chosen order:\n");
  std::fputs(Best->explain(*Q).c_str(), stdout);
  std::puts("");

  volatile double Sink = 0.0;
  Timer T1;
  auto C1 = kernels::mmul(A, B);
  double LinComb = T1.seconds();
  Sink = C1.Val.empty() ? 0.0 : C1.Val[0];

  Timer T2;
  auto C2 = kernels::mmulInnerProduct(A, BT);
  double InnerProd = T2.seconds();
  Sink = C2.Val.empty() ? 0.0 : C2.Val[0];

  // The auto row dispatches on the planner's chosen order. A j-outermost
  // plan has no kernel here; the enumerator never prefers one for CSR
  // inputs (it would transpose both accesses).
  bool AutoIsLinComb = Best->Order == LinCombOrder;
  Timer T3;
  auto C3 = AutoIsLinComb ? kernels::mmul(A, B)
                          : kernels::mmulInnerProduct(A, transpose(B));
  double Auto = T3.seconds();
  Sink = C3.Val.empty() ? 0.0 : C3.Val[0];
  (void)Sink;

  std::string AutoName = std::string("auto (planner: ") +
                         (AutoIsLinComb ? "e2 lin-comb)" : "e1 inner-prod)");
  ResultTable T({"ordering", "time_s", "slowdown_vs_lincomb"});
  T.addRow({"linear-combination (e2)", ResultTable::num(LinComb),
            ResultTable::num(1.0, 1)});
  T.addRow({"inner-product (e1)", ResultTable::num(InnerProd),
            ResultTable::num(InnerProd / LinComb, 1)});
  T.addRow({AutoName, ResultTable::num(Auto),
            ResultTable::num(Auto / LinComb, 1)});
  T.print();

  if (!BO.JsonPath.empty()) {
    BenchJson Json;
    Json.add("sec81_matmul_order", "lincomb", 1, LinComb,
             LinCombPlan->cost(), LinCombPlan->AccessCost);
    Json.add("sec81_matmul_order", "innerprod", 1, InnerProd,
             InnerProdPlan->cost(), InnerProdPlan->AccessCost);
    Json.add("sec81_matmul_order", "auto", 1, Auto, Best->cost(),
             Best->AccessCost);
    if (!Json.writeFile(BO.JsonPath))
      return 1;
  }
  return 0;
}

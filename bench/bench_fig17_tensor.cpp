//===- bench/bench_fig17_tensor.cpp - Figure 17: Etch vs TACO ------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 17: sparse tensor algebra expressions on synthetic
// inputs swept across sparsity, comparing the indexed-stream (Etch)
// kernels against hand-written TACO-style kernels. The paper reports Etch
// within 0.75-1.2x of TACO except matrix addition (2-3x slower constant)
// and smul (faster, asymptotically, via binary-search skip).
//
// Output: one row per (expression, sparsity) with both times and the
// speedup of Etch over TACO (higher than 1 = Etch faster), i.e. the data
// series of the figure's seven panels.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "baselines/taco_kernels.h"
#include "formats/random.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

namespace {

constexpr Idx MatDim = 1500;
constexpr Idx VecDim = 4'000'000;

double densityPercent(double D) { return D * 100.0; }

void benchVectorOps(ResultTable &T, double D) {
  Rng R(1);
  size_t Nnz = static_cast<size_t>(D * static_cast<double>(VecDim));
  auto X = randomSparseVector(R, VecDim, Nnz);
  auto Y = randomSparseVector(R, VecDim, Nnz);
  auto Z = randomSparseVector(R, VecDim, Nnz);

  volatile double Sink = 0.0;
  double Taco = timeBest([&] { Sink = taco::tripleDot(X, Y, Z); });
  double Etch = timeBest([&] { Sink = kernels::tripleDot(X, Y, Z); });
  (void)Sink;
  T.addRow({"x*y*z (vec mul)", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(Taco * 1e3), ResultTable::num(Etch * 1e3),
            ResultTable::num(Taco / Etch, 2)});
}

void benchMatrixOps(ResultTable &T, double D) {
  Rng R(2);
  size_t Nnz = static_cast<size_t>(D * static_cast<double>(MatDim) *
                                   static_cast<double>(MatDim));
  auto A = randomCsr(R, MatDim, MatDim, Nnz);
  auto B = randomCsr(R, MatDim, MatDim, Nnz);
  auto X = randomDenseVector(R, MatDim);
  DenseVector<double> Y(MatDim);

  volatile double Sink = 0.0;
  double TacoT = timeBest([&] { taco::spmv(A, X, Y); });
  double EtchT = timeBest([&] { kernels::spmv(A, X, Y); });
  T.addRow({"spmv", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
            ResultTable::num(TacoT / EtchT, 2)});

  TacoT = timeBest([&] { Sink = taco::inner(A, B); });
  EtchT = timeBest([&] { Sink = kernels::inner(A, B); });
  (void)Sink;
  T.addRow({"inner", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
            ResultTable::num(TacoT / EtchT, 2)});

  TacoT = timeBest([&] {
    auto C = taco::matAdd(A, B);
    Sink = C.Val.empty() ? 0.0 : C.Val[0];
  });
  EtchT = timeBest([&] {
    auto C = kernels::matAdd(A, B);
    Sink = C.Val.empty() ? 0.0 : C.Val[0];
  });
  T.addRow({"add", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
            ResultTable::num(TacoT / EtchT, 2)});

  if (D <= 0.02) { // mmul cost grows as d^2 * n^3; keep the sweep sane.
    TacoT = timeBest([&] {
      auto C = taco::mmul(A, B);
      Sink = C.Val.empty() ? 0.0 : C.Val[0];
    });
    EtchT = timeBest([&] {
      auto C = kernels::mmul(A, B);
      Sink = C.Val.empty() ? 0.0 : C.Val[0];
    });
    T.addRow({"mmul", ResultTable::num(densityPercent(D), 3),
              ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
              ResultTable::num(TacoT / EtchT, 2)});
  }
}

void benchSmul(ResultTable &T, double D) {
  // smul: elementwise DCSR multiply where A is fixed and much sparser than
  // B; Etch's binary-search skip hops over B's rows, TACO walks them.
  Rng R(3);
  const Idx N = 4000;
  size_t NnzA = 8000;
  size_t NnzB = static_cast<size_t>(D * static_cast<double>(N) *
                                    static_cast<double>(N));
  auto A = randomDcsr(R, N, N, NnzA);
  auto B = randomDcsr(R, N, N, NnzB);

  volatile double Sink = 0.0;
  double TacoT = timeBest([&] {
    auto C = taco::smul(A, B);
    Sink = static_cast<double>(C.nnz());
  });
  double EtchT = timeBest([&] {
    auto C = kernels::smul<SearchPolicy::Gallop>(A, B);
    Sink = static_cast<double>(C.nnz());
  });
  (void)Sink;
  T.addRow({"smul", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
            ResultTable::num(TacoT / EtchT, 2)});
}

void benchMttkrp(ResultTable &T, double D) {
  Rng R(4);
  const Idx NI = 300, NJ = 300, NK = 300;
  const int64_t Rank = 16;
  size_t Nnz = static_cast<size_t>(D * static_cast<double>(NI) * NJ * NK);
  auto B = randomCsf3(R, NI, NJ, NK, Nnz);
  std::vector<double> C(static_cast<size_t>(NJ * Rank)),
      Dm(static_cast<size_t>(NK * Rank));
  for (auto &V : C)
    V = randomValue(R);
  for (auto &V : Dm)
    V = randomValue(R);
  std::vector<double> Out;

  double TacoT = timeBest([&] { taco::mttkrp(B, C, Dm, Rank, Out); });
  double EtchT = timeBest([&] { kernels::mttkrp(B, C, Dm, Rank, Out); });
  T.addRow({"mttkrp", ResultTable::num(densityPercent(D), 3),
            ResultTable::num(TacoT * 1e3), ResultTable::num(EtchT * 1e3),
            ResultTable::num(TacoT / EtchT, 2)});
}

/// Thread sweep of the data-parallel kernel variants (streams/parallel.h)
/// at one representative density each; the threads=1 row is the serial
/// kernel, so speedup_vs_serial isolates the partition + pool overhead.
void benchParallelSweep(ResultTable &T, BenchJson &J,
                        const BenchOptions &Opts) {
  {
    Rng R(2);
    const double D = 0.01;
    size_t Nnz = static_cast<size_t>(D * static_cast<double>(MatDim) *
                                     static_cast<double>(MatDim));
    auto A = randomCsr(R, MatDim, MatDim, Nnz);
    auto X = randomDenseVector(R, MatDim);
    DenseVector<double> Y(MatDim);
    double Serial = timeBest([&] { kernels::spmv(A, X, Y); });
    J.add("spmv", "density=0.01;serial", 1, Serial);
    for (int Threads : Opts.Threads) {
      ThreadPool Pool(static_cast<unsigned>(Threads));
      double Par =
          timeBest([&] { kernels::spmvParallel(Pool, A, X, Y); });
      J.add("spmv", "density=0.01", Threads, Par);
      T.addRow({"spmv", ResultTable::num(densityPercent(D), 3),
                ResultTable::num(int64_t{Threads}),
                ResultTable::num(Par * 1e3),
                ResultTable::num(Serial / Par, 2)});
    }
  }
  {
    Rng R(3);
    const Idx N = 4000;
    const double D = 0.03;
    auto A = randomDcsr(R, N, N, 8000);
    auto B = randomDcsr(R, N, N,
                        static_cast<size_t>(D * static_cast<double>(N) *
                                            static_cast<double>(N)));
    volatile double Sink = 0.0;
    double Serial = timeBest([&] {
      auto C = kernels::smul<SearchPolicy::Gallop>(A, B);
      Sink = static_cast<double>(C.nnz());
    });
    J.add("smul", "density=0.03;serial", 1, Serial);
    for (int Threads : Opts.Threads) {
      ThreadPool Pool(static_cast<unsigned>(Threads));
      double Par = timeBest([&] {
        auto C = kernels::smulParallel<SearchPolicy::Gallop>(Pool, A, B);
        Sink = static_cast<double>(C.nnz());
      });
      J.add("smul", "density=0.03", Threads, Par);
      T.addRow({"smul", ResultTable::num(densityPercent(D), 3),
                ResultTable::num(int64_t{Threads}),
                ResultTable::num(Par * 1e3),
                ResultTable::num(Serial / Par, 2)});
    }
    (void)Sink;
  }
  {
    Rng R(4);
    const Idx NI = 300, NJ = 300, NK = 300;
    const int64_t Rank = 16;
    const double D = 0.003;
    auto B = randomCsf3(R, NI, NJ, NK,
                        static_cast<size_t>(D * static_cast<double>(NI) *
                                            NJ * NK));
    std::vector<double> C(static_cast<size_t>(NJ * Rank)),
        Dm(static_cast<size_t>(NK * Rank));
    for (auto &V : C)
      V = randomValue(R);
    for (auto &V : Dm)
      V = randomValue(R);
    std::vector<double> Out;
    double Serial = timeBest([&] { kernels::mttkrp(B, C, Dm, Rank, Out); });
    J.add("mttkrp", "density=0.003;serial", 1, Serial);
    for (int Threads : Opts.Threads) {
      ThreadPool Pool(static_cast<unsigned>(Threads));
      double Par = timeBest(
          [&] { kernels::mttkrpParallel(Pool, B, C, Dm, Rank, Out); });
      J.add("mttkrp", "density=0.003", Threads, Par);
      T.addRow({"mttkrp", ResultTable::num(densityPercent(D), 3),
                ResultTable::num(int64_t{Threads}),
                ResultTable::num(Par * 1e3),
                ResultTable::num(Serial / Par, 2)});
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchArgs(Argc, Argv);
  std::puts("=== Figure 17: sparse tensor algebra, Etch vs TACO ===");
  std::puts("(speedup = taco_ms / etch_ms; paper: 0.75-1.2x overall,");
  std::puts(" add 2-3x slower, smul faster via binary-search skip)\n");

  ResultTable T({"expr", "density_%", "taco_ms", "etch_ms", "speedup"});
  for (double D : {0.0003, 0.001, 0.003, 0.01, 0.03})
    benchVectorOps(T, D);
  for (double D : {0.001, 0.003, 0.01, 0.03})
    benchMatrixOps(T, D);
  for (double D : {0.001, 0.003, 0.01, 0.03, 0.1})
    benchSmul(T, D);
  for (double D : {0.0003, 0.001, 0.003})
    benchMttkrp(T, D);
  T.print();

  std::puts("\n=== Parallel kernel thread sweep (streams/parallel.h) ===");
  ResultTable TP(
      {"expr", "density_%", "threads", "etch_ms", "speedup_vs_serial"});
  BenchJson J;
  benchParallelSweep(TP, J, Opts);
  TP.print();

  if (!Opts.JsonPath.empty() && !J.writeFile(Opts.JsonPath))
    return 1;
  return 0;
}

//===- bench/bench_fig21_filtered_spmv.cpp - Figure 21 -------------------===//
//
// Part of the etch project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 21 (Section 8.3): SpMV fused with a relational filter.
// As the filter's selectivity approaches 100% (fewer rows pass), the fused
// execution's time goes to zero because the row-level intersection skips
// entire matrix rows; the unfused baseline computes the full SpMV first
// and filters afterwards, so its time stays flat.
//
//===----------------------------------------------------------------------===//

#include "baselines/etch_kernels.h"
#include "formats/random.h"
#include "support/benchjson.h"
#include "support/table.h"
#include "support/timer.h"

#include <cstdio>

using namespace etch;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseBenchArgs(Argc, Argv);
  std::puts("=== Figure 21: filtered SpMV (fused tensor + relational) ===");
  std::puts("(paper: fused time -> 0 as selectivity -> 100%)\n");

  const Idx N = 20'000;
  const size_t Nnz = 2'000'000;
  Rng R(17);
  auto A = randomCsr(R, N, N, Nnz);
  auto X = randomDenseVector(R, N);
  DenseVector<double> Y(N);

  ResultTable T({"selectivity_%", "rows_passing", "fused_ms", "unfused_ms",
                 "speedup"});
  for (double Sel : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    size_t Pass = static_cast<size_t>((1.0 - Sel) * static_cast<double>(N));
    Rng RP(23);
    auto PassRows = randomSparseVector(RP, N, Pass);

    double Fused = timeBest(
        [&] { kernels::filteredSpmvFused(A, X, PassRows, Y); }, 3);
    double Unfused = timeBest(
        [&] { kernels::filteredSpmvUnfused(A, X, PassRows, Y); }, 3);
    T.addRow({ResultTable::num(Sel * 100.0, 0),
              ResultTable::num(static_cast<int64_t>(Pass)),
              ResultTable::num(Fused * 1e3),
              ResultTable::num(Unfused * 1e3),
              ResultTable::num(Unfused / Fused, 1)});
  }
  T.print();

  // Thread sweep of the chunk-parallel fused kernel at two selectivities:
  // 0% (all rows pass — the most work to split) and 90% (sparse pass set —
  // partitioning follows the filter, not the matrix).
  std::puts("\n=== Parallel fused filtered-SpMV thread sweep ===");
  ResultTable TP(
      {"selectivity_%", "threads", "fused_ms", "speedup_vs_serial"});
  BenchJson J;
  for (double Sel : {0.0, 0.9}) {
    size_t Pass = static_cast<size_t>((1.0 - Sel) * static_cast<double>(N));
    Rng RP(23);
    auto PassRows = randomSparseVector(RP, N, Pass);
    std::string Cfg = "selectivity=" + ResultTable::num(Sel * 100.0, 0);
    double Serial = timeBest(
        [&] { kernels::filteredSpmvFused(A, X, PassRows, Y); }, 3);
    J.add("filteredSpmvFused", Cfg + ";serial", 1, Serial);
    for (int Threads : Opts.Threads) {
      ThreadPool Pool(static_cast<unsigned>(Threads));
      double Par = timeBest(
          [&] {
            kernels::filteredSpmvFusedParallel(Pool, A, X, PassRows, Y);
          },
          3);
      J.add("filteredSpmvFused", Cfg, Threads, Par);
      TP.addRow({ResultTable::num(Sel * 100.0, 0),
                 ResultTable::num(int64_t{Threads}),
                 ResultTable::num(Par * 1e3),
                 ResultTable::num(Serial / Par, 2)});
    }
  }
  TP.print();

  if (!Opts.JsonPath.empty() && !J.writeFile(Opts.JsonPath))
    return 1;
  return 0;
}
